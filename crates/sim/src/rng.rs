//! A small, self-contained deterministic PRNG.
//!
//! The workspace is dependency-free by design (see DESIGN.md §6), so the
//! simulator ships its own generator instead of pulling in `rand`:
//! xoshiro256++ seeded through SplitMix64, the standard pairing recommended
//! by the xoshiro authors. It is fast (four u64 of state, a handful of
//! shifts per draw), passes BigCrush, and — most importantly here — its
//! streams are stable across platforms and releases, which is what makes
//! simulation runs and sweep reports byte-reproducible.
//!
//! The API mirrors the subset of `rand` the workspace used: seeding from a
//! `u64`, uniform ranges over the integer types, `f64` in `[0, 1)`, and a
//! Bernoulli draw.

use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256++ generator.
///
/// ```
/// use manet_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(10..=20u64);
/// assert!((10..=20).contains(&x));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from a range; see [`UniformRange`] for the supported
    /// range types.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from `[0, bound)` without modulo bias (Lemire's
    /// widening-multiply rejection method).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the multiply-shift map exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Range types [`SimRng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draw one uniform value.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

fn sample_u64(rng: &mut SimRng, lo: u64, hi_inclusive: u64) -> u64 {
    assert!(lo <= hi_inclusive, "empty range");
    let span = hi_inclusive - lo;
    if span == u64::MAX {
        return rng.next_u64();
    }
    lo + rng.bounded(span + 1)
}

impl UniformRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SimRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        sample_u64(rng, self.start, self.end - 1)
    }
}

impl UniformRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SimRng) -> u64 {
        sample_u64(rng, *self.start(), *self.end())
    }
}

impl UniformRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SimRng) -> u32 {
        assert!(self.start < self.end, "empty range");
        sample_u64(rng, u64::from(self.start), u64::from(self.end) - 1) as u32
    }
}

impl UniformRange for RangeInclusive<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SimRng) -> u32 {
        sample_u64(rng, u64::from(*self.start()), u64::from(*self.end())) as u32
    }
}

impl UniformRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SimRng) -> usize {
        assert!(self.start < self.end, "empty range");
        sample_u64(rng, self.start as u64, self.end as u64 - 1) as usize
    }
}

impl UniformRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SimRng) -> usize {
        sample_u64(rng, *self.start() as u64, *self.end() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        let mut c = SimRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_answer_is_stable() {
        // Pin the stream so accidental algorithm changes (which would
        // silently re-randomize every experiment) fail loudly.
        let mut r = SimRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x5317_5D61_490B_23DF);
        // The exact value depends only on splitmix64 + xoshiro256++, both
        // fixed algorithms; recompute by hand if this ever needs updating.
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let x = r.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let z = r.gen_range(0..3u32);
            assert!(z < 3);
            let w = r.gen_range(0..7usize);
            assert!(w < 7);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_hit_every_value() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SimRng::seed_from_u64(1);
        let _ = r.gen_range(5..5u64);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
