//! External commands injected into a running simulation.

use crate::ids::NodeId;
use crate::world::Position;

/// A scripted action applied to the simulation at a scheduled time.
///
/// Commands are how workloads, mobility scripts and fault injectors drive
/// the run: they model the *application* (hungry/exit transitions), the
/// *adversary* (crashes) and the *environment* (movement).
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Make `node` hungry, if it is currently thinking (otherwise no-op).
    SetHungry(NodeId),
    /// Ask `node` to leave the critical section. Applied only if the node is
    /// still eating *and* still in eating session `session` — a node demoted
    /// to hungry by mobility invalidates the pending exit.
    ExitCs {
        /// The target node.
        node: NodeId,
        /// The eating session this exit was scheduled for.
        session: u64,
    },
    /// Crash `node`: it ceases all activity and never moves again.
    Crash(NodeId),
    /// Restart a crashed `node` as a *fresh incarnation*: its protocol
    /// state is rebuilt from scratch by the node factory, and every
    /// incident link flaps (down, then up with the surviving peer as the
    /// static side) so both ends re-synchronize shared state through the
    /// ordinary link-layer handshake. No-op unless the node is crashed.
    Recover(NodeId),
    /// Start smooth movement of `node` toward `dest` at `speed` distance
    /// units per tick. Ignored for crashed nodes; restarts motion if the
    /// node is already moving.
    StartMove {
        /// The moving node.
        node: NodeId,
        /// Destination position.
        dest: Position,
        /// Distance units per tick; must be > 0.
        speed: f64,
    },
    /// Instantaneously relocate `node` to `dest`. The node is treated as
    /// moving for the duration of the jump (it receives `MovementStarted`,
    /// the link-change notifications with itself as the moving side, then
    /// `MovementEnded`). Handy for scripted scenarios such as Figure 6.
    Teleport {
        /// The moving node.
        node: NodeId,
        /// Destination position.
        dest: Position,
    },
    /// Sever every link crossing the cut between `side` and the rest of
    /// the network (the fault adversary's scripted partition). Replaces
    /// any partition already in force. Links go down through the normal
    /// link-layer notifications; nodes cannot tell a partition from
    /// mobility-induced link failures.
    Partition {
        /// One side of the cut.
        side: Vec<NodeId>,
    },
    /// Lift the current partition, if any: links the connectivity rule
    /// implies across the former cut come back as *fresh incarnations*
    /// (LinkUp notifications, new epochs — exactly like a reconnect).
    Heal,
}

impl Command {
    /// The node this command addresses, if it addresses a single node
    /// (partition commands address a node *set*).
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            Command::SetHungry(n)
            | Command::ExitCs { node: n, .. }
            | Command::Crash(n)
            | Command::Recover(n)
            | Command::StartMove { node: n, .. }
            | Command::Teleport { node: n, .. } => Some(n),
            Command::Partition { .. } | Command::Heal => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accessor_covers_all_variants() {
        let n = NodeId(3);
        let cmds = [
            Command::SetHungry(n),
            Command::ExitCs {
                node: n,
                session: 1,
            },
            Command::Crash(n),
            Command::Recover(n),
            Command::StartMove {
                node: n,
                dest: Position { x: 1.0, y: 2.0 },
                speed: 0.5,
            },
            Command::Teleport {
                node: n,
                dest: Position { x: 1.0, y: 2.0 },
            },
        ];
        for c in cmds {
            assert_eq!(c.node(), Some(n));
        }
        assert_eq!(Command::Partition { side: vec![n] }.node(), None);
        assert_eq!(Command::Heal.node(), None);
    }
}
