//! Pluggable event-queue cores: binary heap and bounded-horizon timing wheel.
//!
//! The engine dispatches events in `(time, sequence)` order. The classic
//! core is a `BinaryHeap` keyed on exactly that pair; the timing wheel
//! exploits the model's bounded scheduling horizon — message delays are
//! capped by ν and motion steps by `move_step_ticks`, so almost every event
//! lands within a small window above the current instant — to make both
//! `push` and `pop` O(1): events hash into per-tick buckets, ties within a
//! bucket are consumed in insertion (= sequence) order, and the rare event
//! beyond the window parks in a small overflow heap consulted alongside the
//! wheel. Both cores are proven bit-for-bit equivalent by the
//! `queue_equivalence` suite; see DESIGN.md §12 for the argument.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::SimConfig;
use crate::time::SimTime;

/// Which event-queue core the engine uses. The default is the timing wheel
/// ([`EventQueueKind::Wheel`]) unless the crate is built with the
/// `reference` feature, which restores the binary heap. Both cores are
/// bit-for-bit equivalent (pinned by the `queue_equivalence` differential
/// suite); this knob exists so one binary can compare them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventQueueKind {
    /// `BinaryHeap<Reverse<(at, seq, item)>>` — the reference core.
    Heap,
    /// Bounded-horizon timing wheel with an overflow heap for far events.
    Wheel,
}

impl Default for EventQueueKind {
    fn default() -> EventQueueKind {
        if cfg!(feature = "reference") {
            EventQueueKind::Heap
        } else {
            EventQueueKind::Wheel
        }
    }
}

impl EventQueueKind {
    /// Short lowercase label (`"heap"` / `"wheel"`), for reports.
    pub fn name(self) -> &'static str {
        match self {
            EventQueueKind::Heap => "heap",
            EventQueueKind::Wheel => "wheel",
        }
    }
}

/// A heap entry ordered by `(at, seq)` — the engine's total event order.
pub(crate) struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue behind the engine: one of the two interchangeable cores.
/// `seq` values are assigned by the caller (strictly increasing across
/// pushes); the queue yields entries in ascending `(at, seq)` order.
pub(crate) enum EventQueue<T> {
    Heap(BinaryHeap<Reverse<HeapEntry<T>>>),
    Wheel(TimingWheel<T>),
}

impl<T> EventQueue<T> {
    /// Build the queue the configuration asks for. The wheel window is
    /// sized to the config's scheduling horizon (ν and the motion step),
    /// with a generous floor so harness-level timers stay on the wheel.
    pub(crate) fn from_config(cfg: &SimConfig) -> EventQueue<T> {
        match cfg.event_queue {
            EventQueueKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            EventQueueKind::Wheel => {
                let span = cfg.max_message_delay + cfg.move_step_ticks + 2;
                let size = span.next_power_of_two().max(256) as usize;
                EventQueue::Wheel(TimingWheel::new(size))
            }
        }
    }

    /// Insert an entry. `seq` must exceed every previously pushed `seq`.
    pub(crate) fn push(&mut self, at: SimTime, seq: u64, item: T) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(HeapEntry { at, seq, item })),
            EventQueue::Wheel(w) => w.push(at, seq, item),
        }
    }

    /// Time of the next entry in `(at, seq)` order, without removing it.
    /// The following [`EventQueue::pop`] returns exactly this entry — peek
    /// and pop share one candidate, so the two can never desynchronize.
    pub(crate) fn next_at(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(e)| e.at),
            EventQueue::Wheel(w) => w.peek().map(|(at, _)| at),
        }
    }

    /// Remove and return the smallest entry in `(at, seq)` order.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(e)| (e.at, e.seq, e.item)),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    /// Number of queued entries.
    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len,
        }
    }

    /// Visit every queued entry in unspecified order.
    pub(crate) fn iter(&self) -> Box<dyn Iterator<Item = (SimTime, u64, &T)> + '_> {
        match self {
            EventQueue::Heap(h) => Box::new(h.iter().map(|Reverse(e)| (e.at, e.seq, &e.item))),
            EventQueue::Wheel(w) => Box::new(
                w.slab
                    .iter()
                    .filter_map(|s| s.item.as_ref().map(|it| (s.at, s.seq, it))),
            ),
        }
    }
}

/// Slab cell: payload plus the key it was queued under. `item` is `None`
/// when the cell is on the free list.
struct Slot<T> {
    at: SimTime,
    seq: u64,
    item: Option<T>,
}

/// One wheel bucket: slab indices in insertion (= sequence) order,
/// consumed FIFO through `head`. All live entries of a bucket share one
/// `at` — the window invariant maps each pending tick to its own bucket.
#[derive(Default)]
struct Bucket {
    entries: Vec<u32>,
    head: usize,
}

/// Where the cached peek candidate lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    Bucket,
    Overflow,
}

/// The cached peek candidate: the global `(at, seq)` minimum, computed at
/// most once between structural changes.
#[derive(Clone, Copy)]
struct Cand {
    at: SimTime,
    seq: u64,
    slot: u32,
    loc: Loc,
}

/// A bounded-horizon timing wheel over slab-allocated entries.
///
/// Invariants:
/// * every bucket-resident entry satisfies `base ≤ at < base + size`, so
///   `at & mask` is injective over pending ticks and each bucket holds one
///   `at` value, in sequence order;
/// * `base` only advances, to the `at` of each popped entry (the global
///   minimum, so nothing pending is ever below `base`);
/// * entries outside the window go to the `overflow` heap and are popped
///   from there — they are never redistributed onto the wheel.
pub(crate) struct TimingWheel<T> {
    slab: Vec<Slot<T>>,
    free: Vec<u32>,
    buckets: Vec<Bucket>,
    mask: u64,
    base: SimTime,
    overflow: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    cached: Option<Cand>,
    len: usize,
}

impl<T> TimingWheel<T> {
    fn new(size: usize) -> TimingWheel<T> {
        debug_assert!(size.is_power_of_two());
        TimingWheel {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..size).map(|_| Bucket::default()).collect(),
            mask: size as u64 - 1,
            base: SimTime::ZERO,
            overflow: BinaryHeap::new(),
            cached: None,
            len: 0,
        }
    }

    fn alloc(&mut self, at: SimTime, seq: u64, item: T) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slab[slot as usize] = Slot {
                at,
                seq,
                item: Some(item),
            };
            slot
        } else {
            self.slab.push(Slot {
                at,
                seq,
                item: Some(item),
            });
            (self.slab.len() - 1) as u32
        }
    }

    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        if self.len == 0 {
            // Nothing pending: re-anchor the window so a long quiet gap
            // does not force future near-term events into the overflow.
            self.base = at;
            self.cached = None;
        }
        let slot = self.alloc(at, seq, item);
        let size = self.buckets.len() as u64;
        let loc = if at >= self.base && at.0 - self.base.0 < size {
            self.buckets[(at.0 & self.mask) as usize].entries.push(slot);
            Loc::Bucket
        } else {
            // Beyond the window (or, defensively, below the base).
            self.overflow.push(Reverse((at, seq, slot)));
            Loc::Overflow
        };
        self.len += 1;
        // A fresh entry can only displace the cached minimum with a
        // strictly smaller time: its seq is larger than everything queued.
        if let Some(c) = self.cached {
            if at < c.at {
                self.cached = Some(Cand { at, seq, slot, loc });
            }
        }
    }

    /// Compute (or reuse) the global minimum candidate.
    fn ensure_cand(&mut self) {
        if self.cached.is_some() || self.len == 0 {
            return;
        }
        let mut best: Option<Cand> = None;
        if self.len > self.overflow.len() {
            // At least one bucket-resident entry: scan ticks upward from
            // `base`; the first non-empty bucket holds the wheel minimum,
            // and its FIFO head is the smallest seq at that tick.
            let size = self.buckets.len() as u64;
            for i in 0..size {
                let t = self.base.0.wrapping_add(i);
                let b = &self.buckets[(t & self.mask) as usize];
                if b.head < b.entries.len() {
                    let slot = b.entries[b.head];
                    let s = &self.slab[slot as usize];
                    best = Some(Cand {
                        at: s.at,
                        seq: s.seq,
                        slot,
                        loc: Loc::Bucket,
                    });
                    break;
                }
            }
            debug_assert!(best.is_some(), "wheel count says an entry exists");
        }
        if let Some(&Reverse((at, seq, slot))) = self.overflow.peek() {
            if best.is_none_or(|c| (at, seq) < (c.at, c.seq)) {
                best = Some(Cand {
                    at,
                    seq,
                    slot,
                    loc: Loc::Overflow,
                });
            }
        }
        self.cached = best;
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.ensure_cand();
        self.cached.map(|c| (c.at, c.seq))
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.ensure_cand();
        let c = self.cached.take()?;
        match c.loc {
            Loc::Bucket => {
                let b = &mut self.buckets[(c.at.0 & self.mask) as usize];
                debug_assert_eq!(b.entries.get(b.head), Some(&c.slot));
                b.head += 1;
                if b.head == b.entries.len() {
                    b.entries.clear();
                    b.head = 0;
                }
            }
            Loc::Overflow => {
                let popped = self.overflow.pop();
                debug_assert_eq!(popped, Some(Reverse((c.at, c.seq, c.slot))));
            }
        }
        // Advance-only: a below-base overflow entry (pushed after an
        // empty-queue re-anchor picked a later base) must not drag the
        // window backwards under the remaining bucket entries.
        self.base = self.base.max(c.at);
        self.len -= 1;
        let cell = &mut self.slab[c.slot as usize];
        let item = cell.item.take().expect("candidate slot is live");
        self.free.push(c.slot);
        Some((c.at, c.seq, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn cfg_with(kind: EventQueueKind) -> SimConfig {
        SimConfig {
            event_queue: kind,
            ..SimConfig::default()
        }
    }

    #[test]
    fn default_kind_tracks_the_reference_feature() {
        let expect = if cfg!(feature = "reference") {
            EventQueueKind::Heap
        } else {
            EventQueueKind::Wheel
        };
        assert_eq!(EventQueueKind::default(), expect);
        assert_eq!(EventQueueKind::Heap.name(), "heap");
        assert_eq!(EventQueueKind::Wheel.name(), "wheel");
    }

    #[test]
    fn both_cores_drain_in_at_seq_order() {
        let mut heap: EventQueue<u32> = EventQueue::from_config(&cfg_with(EventQueueKind::Heap));
        let mut wheel: EventQueue<u32> = EventQueue::from_config(&cfg_with(EventQueueKind::Wheel));
        // Same instant, interleaved pushes: ties must break by seq (FIFO).
        for (seq, at) in [(1, 5u64), (2, 3), (3, 5), (4, 3), (5, 4)] {
            heap.push(SimTime(at), seq, seq as u32);
            wheel.push(SimTime(at), seq, seq as u32);
        }
        let drain = |q: &mut EventQueue<u32>| {
            let mut out = vec![];
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        };
        let h = drain(&mut heap);
        assert_eq!(h, drain(&mut wheel));
        assert_eq!(
            h,
            vec![
                (SimTime(3), 2, 2),
                (SimTime(3), 4, 4),
                (SimTime(4), 5, 5),
                (SimTime(5), 1, 1),
                (SimTime(5), 3, 3),
            ]
        );
    }

    #[test]
    fn peek_always_matches_the_next_pop() {
        // Randomized differential run, including far events (overflow),
        // interleaved pushes and pops, and peeks between every step.
        let mut rng = SimRng::seed_from_u64(0xBEE5_0001);
        let mut heap: EventQueue<u64> = EventQueue::from_config(&cfg_with(EventQueueKind::Heap));
        let mut wheel: EventQueue<u64> = EventQueue::from_config(&cfg_with(EventQueueKind::Wheel));
        let mut now = 0u64;
        let mut seq = 0u64;
        for step in 0..20_000 {
            if rng.gen_bool(0.55) || heap.len() == 0 {
                // Mostly near-term events; occasionally far beyond the
                // 256-tick window, and sometimes exactly `now`.
                let delay = match rng.gen_range(0..10u32) {
                    0 => 0,
                    1..=7 => rng.gen_range(0..12u64),
                    8 => rng.gen_range(200..300u64),
                    _ => rng.gen_range(1_000..50_000u64),
                };
                seq += 1;
                heap.push(SimTime(now + delay), seq, seq);
                wheel.push(SimTime(now + delay), seq, seq);
            } else {
                assert_eq!(heap.next_at(), wheel.next_at(), "peek diverged @{step}");
                let h = heap.pop();
                let w = wheel.pop();
                assert_eq!(h, w, "pop diverged @{step}");
                if let Some((at, _, _)) = h {
                    assert!(at.0 >= now, "time went backwards @{step}");
                    now = at.0;
                }
            }
            assert_eq!(heap.len(), wheel.len());
        }
        while let Some(h) = heap.pop() {
            assert_eq!(Some(h), wheel.pop());
        }
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn iter_visits_every_pending_entry() {
        for kind in [EventQueueKind::Heap, EventQueueKind::Wheel] {
            let mut q: EventQueue<u32> = EventQueue::from_config(&cfg_with(kind));
            q.push(SimTime(2), 1, 10);
            q.push(SimTime(9_999), 2, 20); // overflow on the wheel
            q.push(SimTime(2), 3, 30);
            assert_eq!(q.pop(), Some((SimTime(2), 1, 10)));
            let mut seen: Vec<(u64, u64, u32)> =
                q.iter().map(|(at, seq, &it)| (at.0, seq, it)).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![(2, 3, 30), (9_999, 2, 20)], "{kind:?}");
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn window_reanchors_after_a_quiet_gap() {
        let mut q: EventQueue<u32> = EventQueue::from_config(&cfg_with(EventQueueKind::Wheel));
        q.push(SimTime(1), 1, 1);
        assert_eq!(q.pop(), Some((SimTime(1), 1, 1)));
        // Far in the future relative to the drained window: must still be
        // an O(1) wheel insert (re-anchored base), and pop correctly.
        q.push(SimTime(1_000_000), 2, 2);
        q.push(SimTime(1_000_001), 3, 3);
        if let EventQueue::Wheel(w) = &q {
            assert!(w.overflow.is_empty(), "base must re-anchor when empty");
        }
        assert_eq!(q.pop(), Some((SimTime(1_000_000), 2, 2)));
        assert_eq!(q.pop(), Some((SimTime(1_000_001), 3, 3)));
    }
}
