//! Optional engine-level trace for debugging and scenario assertions.

use crate::ids::NodeId;
use crate::protocol::DiningState;
use crate::time::SimTime;

/// The kind of a trace entry.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceKind {
    /// A message was delivered.
    Deliver {
        /// The sender.
        from: NodeId,
        /// The receiver.
        to: NodeId,
        /// Coarse label of the message (see `Protocol::msg_kind`).
        kind: &'static str,
        /// 1-based delivery sequence number on the `from → to` channel,
        /// scoped to the link incarnation (a reconnect restarts at 1).
        seq: u64,
    },
    /// A link came up between the two nodes (first = designated static side).
    LinkUp(NodeId, NodeId),
    /// A link between the two nodes failed.
    LinkDown(NodeId, NodeId),
    /// A node's dining state changed.
    StateChange(NodeId, DiningState, DiningState),
    /// A node crashed.
    Crash(NodeId),
    /// A crashed node recovered as a fresh incarnation.
    Recover(NodeId),
    /// A node started moving.
    MoveStart(NodeId),
    /// A node finished moving.
    MoveEnd(NodeId),
    /// A scripted partition severed the given number of links.
    Partition(usize),
    /// The partition healed, restoring the given number of links.
    Heal(usize),
    /// The fault adversary dropped a message from the first node to the
    /// second.
    FaultDrop(NodeId, NodeId),
    /// The fault adversary duplicated a message from the first node to
    /// the second.
    FaultDuplicate(NodeId, NodeId),
    /// The fault adversary delayed a message (skew or forced ν) from the
    /// first node to the second.
    FaultDelay(NodeId, NodeId),
    /// The channel model itself lost a frame from the first node to the
    /// second (e.g. a Gilbert–Elliott burst; distinct from
    /// [`TraceKind::FaultDrop`], which is the adversary's doing).
    ChannelLoss(NodeId, NodeId),
}

/// One recorded event of a traced run.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// An append-only trace recorder (enabled via [`crate::SimConfig::trace`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct Trace {
    pub entries: Vec<TraceEntry>,
    pub enabled: bool,
}

impl Trace {
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.enabled {
            self.entries.push(TraceEntry { at, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(SimTime(1), TraceKind::Crash(NodeId(0)));
        assert!(t.entries.is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace {
            enabled: true,
            ..Trace::default()
        };
        t.record(SimTime(1), TraceKind::Crash(NodeId(0)));
        t.record(SimTime(2), TraceKind::MoveStart(NodeId(1)));
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].at, SimTime(1));
    }
}
