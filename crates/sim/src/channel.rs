//! Pluggable channel models: what maps a physical send to a delivery time.
//!
//! The paper proves its bounds over clean FIFO links whose delay is an
//! i.i.d. draw in `[min_delay, ν]`. Real MANETs have finite link capacity,
//! shared-medium contention and correlated (bursty) loss. This module
//! supplies four models, selected by [`crate::SimConfig::channel`]:
//!
//! * [`ChannelConfig::Iid`] — the historical i.i.d. draw, the default.
//! * [`ChannelConfig::ConstantBandwidth`] — per-directed-link
//!   serialization: each frame occupies its link for a fixed transmit
//!   time, frames queue FIFO behind in-flight ones, and queueing delay is
//!   *emergent* (bounded by [`crate::RunAbort::ChannelQueueOverflow`]).
//! * [`ChannelConfig::SharedMedium`] — each node's radio neighborhood is
//!   a shared-rate resource: every in-flight frame is served at a
//!   fair-share rate, reallocated on the start and finish of each frame
//!   (in the style of dslab-network / queueing-party shared resources),
//!   so dense cliques contend while sparse rings barely do.
//! * [`ChannelConfig::GilbertElliott`] — a two-state burst-loss chain per
//!   directed link, stepped once per frame from a *dedicated* RNG stream.
//!
//! Determinism contract (mirrors the ARQ shim's):
//!
//! * With `channel: Iid` (the default) the engine's behavior — random
//!   streams, traces, digests, stats, JSONL — is bit-for-bit identical to
//!   a build without this module (pinned by `tests/channel_models.rs`).
//! * Non-default models draw only from a dedicated channel RNG stream
//!   seeded from the run seed; the engine's own stream and the fault
//!   adversary's stream are never perturbed. A Gilbert–Elliott chain whose
//!   parameters make it all-good therefore leaves traces unchanged.
//! * An injected schedule [`crate::sched::Strategy`] takes precedence
//!   over any channel model: the model checker and witness replays pick
//!   every delay themselves and must not contend with a channel.
//!
//! Channel state is scoped to the link incarnation exactly like the
//! engine's FIFO floors and the shim's slots: a flap (mobility, partition,
//! crash recovery) kills queues and chain state with the epoch.

use std::collections::VecDeque;

use crate::ids::NodeId;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Which channel model maps each physical frame to a delivery time (or a
/// loss). See the module docs for the semantics of each variant.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ChannelConfig {
    /// The paper's model and the historical default: every frame's delay
    /// is an independent uniform draw in `[min_delay, ν]` from the
    /// engine's own stream.
    #[default]
    Iid,
    /// Per-directed-link serialization delay with a FIFO transmit queue.
    ConstantBandwidth {
        /// Ticks one frame occupies the link (serialization time). Must
        /// lie inside the legal `[min_delay, ν]` window at runtime or the
        /// run aborts with [`crate::RunAbort::DelayOutOfWindow`].
        ticks_per_frame: u64,
        /// Maximum frames in flight or queued per directed link; overflow
        /// aborts with [`crate::RunAbort::ChannelQueueOverflow`].
        max_queue: usize,
    },
    /// Per-node radio neighborhood as a shared-rate resource with
    /// fair-share reallocation on every frame start/finish.
    SharedMedium {
        /// Ticks one frame takes at full (uncontended) rate. Must lie
        /// inside the legal `[min_delay, ν]` window at runtime.
        ticks_per_frame: u64,
        /// Maximum concurrent frames audible in any sender's neighborhood;
        /// overflow aborts with [`crate::RunAbort::ChannelQueueOverflow`].
        max_inflight: usize,
    },
    /// Two-state (good/bad) burst-loss chain per directed link, stepped
    /// once per frame; delay stays the i.i.d. draw.
    GilbertElliott {
        /// Per-frame probability of leaving the good state.
        p_good_to_bad: f64,
        /// Per-frame probability of leaving the bad state.
        p_bad_to_good: f64,
        /// Frame-loss probability while the chain is good.
        loss_good: f64,
        /// Frame-loss probability while the chain is bad.
        loss_bad: f64,
    },
}

impl ChannelConfig {
    /// Stable machine-readable name of the model (used in abort payloads,
    /// bench output and CLI specs).
    pub fn name(&self) -> &'static str {
        match self {
            ChannelConfig::Iid => "iid",
            ChannelConfig::ConstantBandwidth { .. } => "constant-bandwidth",
            ChannelConfig::SharedMedium { .. } => "shared-medium",
            ChannelConfig::GilbertElliott { .. } => "gilbert-elliott",
        }
    }

    /// Whether this is the default i.i.d. model (no channel state at all).
    pub fn is_iid(&self) -> bool {
        matches!(self, ChannelConfig::Iid)
    }

    /// The Gilbert–Elliott parameters the `chaos` burst-loss class uses:
    /// short bad bursts (mean 4 frames) that black the link out entirely,
    /// ≈ 17 % stationary loss — correlated where sustained loss is i.i.d.
    pub fn burst_loss_default() -> ChannelConfig {
        ChannelConfig::GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.25,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Validate the invariants of the configuration.
    ///
    /// Deliberately *not* checked here: whether a transmit time fits the
    /// run's `[min_delay, ν]` window — that depends on the rest of the
    /// [`crate::SimConfig`] and is enforced at runtime with a structured
    /// [`crate::RunAbort::DelayOutOfWindow`] instead of a silent clamp.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!(
                    "channel.{name} ({p}) must be a probability in [0, 1]"
                ));
            }
            Ok(())
        };
        match *self {
            ChannelConfig::Iid => Ok(()),
            ChannelConfig::ConstantBandwidth {
                ticks_per_frame,
                max_queue,
            } => {
                if ticks_per_frame == 0 {
                    return Err("channel.ticks_per_frame must be ≥ 1".into());
                }
                if max_queue == 0 {
                    return Err("channel.max_queue must be ≥ 1".into());
                }
                Ok(())
            }
            ChannelConfig::SharedMedium {
                ticks_per_frame,
                max_inflight,
            } => {
                if ticks_per_frame == 0 {
                    return Err("channel.ticks_per_frame must be ≥ 1".into());
                }
                if max_inflight == 0 {
                    return Err("channel.max_inflight must be ≥ 1".into());
                }
                Ok(())
            }
            ChannelConfig::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                prob("p_good_to_bad", p_good_to_bad)?;
                prob("p_bad_to_good", p_bad_to_good)?;
                prob("loss_good", loss_good)?;
                prob("loss_bad", loss_bad)?;
                Ok(())
            }
        }
    }

    /// Parse a CLI channel spec:
    ///
    /// * `iid`
    /// * `bandwidth:<ticks_per_frame>[:<max_queue>]`
    /// * `shared:<ticks_per_frame>[:<max_inflight>]`
    /// * `gilbert:<p_good_to_bad>:<p_bad_to_good>[:<loss_good>:<loss_bad>]`
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the malformed field.
    pub fn parse(spec: &str) -> Result<ChannelConfig, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let int = |s: &str, name: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("channel spec: bad {name} '{s}'"))
        };
        let prob = |s: &str, name: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|_| format!("channel spec: bad {name} '{s}'"))
        };
        let cfg = match head {
            "iid" => {
                if !rest.is_empty() {
                    return Err("channel spec: iid takes no parameters".into());
                }
                ChannelConfig::Iid
            }
            "bandwidth" => {
                if rest.is_empty() || rest.len() > 2 {
                    return Err("channel spec: bandwidth:<ticks_per_frame>[:<max_queue>]".into());
                }
                ChannelConfig::ConstantBandwidth {
                    ticks_per_frame: int(rest[0], "ticks_per_frame")?,
                    max_queue: rest
                        .get(1)
                        .map_or(Ok(64), |s| int(s, "max_queue").map(|v| v as usize))?,
                }
            }
            "shared" => {
                if rest.is_empty() || rest.len() > 2 {
                    return Err("channel spec: shared:<ticks_per_frame>[:<max_inflight>]".into());
                }
                ChannelConfig::SharedMedium {
                    ticks_per_frame: int(rest[0], "ticks_per_frame")?,
                    max_inflight: rest
                        .get(1)
                        .map_or(Ok(64), |s| int(s, "max_inflight").map(|v| v as usize))?,
                }
            }
            "gilbert" => {
                if rest.len() != 2 && rest.len() != 4 {
                    return Err(
                        "channel spec: gilbert:<p_g2b>:<p_b2g>[:<loss_good>:<loss_bad>]".into(),
                    );
                }
                ChannelConfig::GilbertElliott {
                    p_good_to_bad: prob(rest[0], "p_good_to_bad")?,
                    p_bad_to_good: prob(rest[1], "p_bad_to_good")?,
                    loss_good: rest.get(2).map_or(Ok(0.0), |s| prob(s, "loss_good"))?,
                    loss_bad: rest.get(3).map_or(Ok(1.0), |s| prob(s, "loss_bad"))?,
                }
            }
            other => {
                return Err(format!(
                    "unknown channel model '{other}' (iid, bandwidth, shared, gilbert)"
                ))
            }
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Counters of channel-model activity over a run (all zero with the
/// default i.i.d. model). Lives inside [`crate::EngineStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames that had to wait behind other traffic before transmitting
    /// (constant-bandwidth: link busy at send; shared-medium: another
    /// frame already audible in the sender's neighborhood).
    pub frames_queued: u64,
    /// Largest number of frames ever simultaneously queued or in flight
    /// on one directed link (constant-bandwidth) or audible in one
    /// sender's neighborhood (shared-medium).
    pub queue_peak: u64,
    /// Gilbert–Elliott chain state changes (good→bad plus bad→good)
    /// across all directed links.
    pub burst_transitions: u64,
    /// Frames the channel itself lost (burst loss; distinct from the
    /// fault adversary's drops and from in-flight link deaths).
    pub frames_lost: u64,
}

/// Per-directed-link serialization state of the constant-bandwidth model,
/// valid for one link incarnation (lazy reset on epoch mismatch, exactly
/// like the engine's FIFO slots and the shim's send slots).
#[derive(Clone, Debug)]
pub(crate) struct CbSlot {
    pub epoch: u64,
    /// Instant the link finishes its last accepted frame.
    pub busy_until: SimTime,
    /// Scheduled completion instants of accepted frames, oldest first;
    /// entries at or before `now` have left the link.
    pub inflight: VecDeque<SimTime>,
}

impl CbSlot {
    fn fresh(epoch: u64) -> CbSlot {
        CbSlot {
            epoch,
            busy_until: SimTime::ZERO,
            inflight: VecDeque::new(),
        }
    }
}

/// Per-directed-link Gilbert–Elliott chain state (same incarnation
/// scoping as [`CbSlot`]; a reconnected link restarts in the good state).
#[derive(Clone, Copy, Debug)]
pub(crate) struct GeSlot {
    pub epoch: u64,
    pub bad: bool,
}

impl GeSlot {
    fn fresh(epoch: u64) -> GeSlot {
        GeSlot { epoch, bad: false }
    }
}

/// One in-flight shared-medium frame: the wire payload it will become on
/// completion plus its fair-share service state.
pub(crate) struct Flight<W> {
    pub from: NodeId,
    pub to: NodeId,
    /// Link incarnation captured at send; stale incarnations drop at
    /// delivery exactly like every other in-flight frame.
    pub link_epoch: u64,
    pub wire: W,
    /// Remaining work in ticks-at-full-rate.
    pub remaining: f64,
    /// Current fair-share service rate (work per tick), recomputed on
    /// every frame start/finish.
    pub rate: f64,
    /// Extra delivery delay the fault adversary imposed at send (skew).
    pub extra_delay: u64,
    /// The nodes that hear this transmission: the sender's closed
    /// neighborhood at send time.
    pub span: Vec<NodeId>,
}

/// Work below this threshold counts as complete (absorbs f64 rounding in
/// the fair-share integration).
const SM_EPS: f64 = 1e-9;

/// Fair-share service rates for a set of concurrent transmissions.
///
/// `spans[i]` is the set of nodes that hear transmission `i` (the
/// sender's closed neighborhood). Each node is a radio of capacity
/// `capacity` (work per tick); transmission `i` is served at
/// `capacity / max_load(i)` where `max_load(i)` is the largest number of
/// concurrent transmissions audible at any node in `spans[i]`.
///
/// This allocation conserves capacity *per neighborhood*: for every node
/// `x`, the instantaneous rates of all transmissions audible at `x` sum
/// to at most `capacity` (each such transmission is served no faster than
/// `capacity / load(x)`, and there are exactly `load(x)` of them). The
/// property battery in `tests/channel_models.rs` pins this.
pub fn fair_share_rates(n: usize, spans: &[Vec<NodeId>], capacity: f64) -> Vec<f64> {
    let mut load = vec![0u32; n];
    for span in spans {
        for x in span {
            load[x.index()] += 1;
        }
    }
    spans
        .iter()
        .map(|span| {
            let worst = span.iter().map(|x| load[x.index()]).max().unwrap_or(1);
            capacity / worst.max(1) as f64
        })
        .collect()
}

/// Engine-side channel state: the model parameters plus dense
/// per-directed-link slot tables (indexed `from * n + to`, like the
/// engine's `LinkTable`) and the shared-medium flight set. `W` is the
/// engine's wire-frame type.
pub(crate) struct ChannelState<W> {
    n: usize,
    pub cfg: ChannelConfig,
    /// Dedicated stream for channel decisions (burst-loss chain steps),
    /// so channel models never perturb the engine's or the fault
    /// adversary's streams.
    pub rng: SimRng,
    /// Constant-bandwidth serialization slots (empty unless that model).
    cb: Vec<CbSlot>,
    /// Gilbert–Elliott chain slots (empty unless that model).
    ge: Vec<GeSlot>,
    /// Shared-medium in-flight frames, in send order.
    pub flights: Vec<Flight<W>>,
    /// Instant the flights' `remaining` fields were last integrated to.
    last_update: SimTime,
    /// Generation of the armed completion-scan event; stale events
    /// (superseded by a reallocation) carry an older generation and no-op.
    pub gen: u64,
}

impl<W> ChannelState<W> {
    /// Build the runtime state for `cfg`, or `None` for the default
    /// i.i.d. model (which keeps no state at all — the engine's fast path
    /// must not even allocate).
    pub fn new(n: usize, cfg: &ChannelConfig, run_seed: u64) -> Option<ChannelState<W>> {
        if cfg.is_iid() {
            return None;
        }
        let cb = match cfg {
            ChannelConfig::ConstantBandwidth { .. } => {
                (0..n * n).map(|_| CbSlot::fresh(0)).collect()
            }
            _ => Vec::new(),
        };
        let ge = match cfg {
            ChannelConfig::GilbertElliott { .. } => vec![GeSlot::fresh(0); n * n],
            _ => Vec::new(),
        };
        Some(ChannelState {
            n,
            cfg: cfg.clone(),
            rng: SimRng::seed_from_u64(channel_seed(run_seed)),
            cb,
            ge,
            flights: Vec::new(),
            last_update: SimTime::ZERO,
            gen: 0,
        })
    }

    /// Constant-bandwidth slot of the `from → to` link in incarnation
    /// `epoch`, lazily reset when the recorded state belongs to a dead
    /// incarnation.
    pub fn cb_slot(&mut self, from: NodeId, to: NodeId, epoch: u64) -> &mut CbSlot {
        let i = from.index() * self.n + to.index();
        let slot = &mut self.cb[i];
        if slot.epoch != epoch {
            *slot = CbSlot::fresh(epoch);
        }
        slot
    }

    /// Step the `from → to` Gilbert–Elliott chain one frame: maybe flip
    /// state, then draw the loss. Returns `(transitioned, lost)`. Both
    /// draws come from the dedicated channel stream and happen on every
    /// frame, so the stream's consumption is a pure function of the frame
    /// count — and an all-good chain changes nothing observable.
    pub fn ge_step(&mut self, from: NodeId, to: NodeId, epoch: u64) -> (bool, bool) {
        let ChannelConfig::GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
        } = self.cfg
        else {
            return (false, false);
        };
        let i = from.index() * self.n + to.index();
        if self.ge[i].epoch != epoch {
            self.ge[i] = GeSlot::fresh(epoch);
        }
        let was_bad = self.ge[i].bad;
        let flip = self.rng.gen_bool(if was_bad {
            p_bad_to_good
        } else {
            p_good_to_bad
        });
        let bad = was_bad ^ flip;
        self.ge[i].bad = bad;
        let lost = self.rng.gen_bool(if bad { loss_bad } else { loss_good });
        (flip, lost)
    }

    /// Full-rate capacity of the shared medium. Work is measured in
    /// full-rate ticks (a frame carries `ticks_per_frame` units), so the
    /// uncontended rate is one unit per tick and contention divides it.
    fn sm_capacity(&self) -> f64 {
        1.0
    }

    /// Integrate every flight's remaining work up to `now` at the rates
    /// in force since the last event.
    pub fn sm_advance(&mut self, now: SimTime) {
        let dt = now.0.saturating_sub(self.last_update.0) as f64;
        if dt > 0.0 {
            for f in &mut self.flights {
                f.remaining -= dt * f.rate;
            }
        }
        self.last_update = now;
    }

    /// Reallocate fair-share rates across all in-flight frames (called on
    /// every start and finish).
    pub fn sm_reallocate(&mut self) {
        let cap = self.sm_capacity();
        let mut load = vec![0u32; self.n];
        for f in &self.flights {
            for x in &f.span {
                load[x.index()] += 1;
            }
        }
        for f in &mut self.flights {
            let worst = f.span.iter().map(|x| load[x.index()]).max().unwrap_or(1);
            f.rate = cap / worst.max(1) as f64;
        }
    }

    /// Number of in-flight frames audible in the closed neighborhood
    /// `span` (its would-be contention level).
    pub fn sm_audible(&self, span: &[NodeId]) -> usize {
        self.flights
            .iter()
            .filter(|f| span.contains(&f.from))
            .count()
    }

    /// Enqueue one frame: integrate to `now`, add the flight, reallocate.
    pub fn sm_enqueue(&mut self, flight: Flight<W>, now: SimTime) {
        self.sm_advance(now);
        self.flights.push(flight);
        self.sm_reallocate();
    }

    /// Earliest instant any flight could complete at current rates, or
    /// `None` when the medium is idle. Completion estimates are ceilinged
    /// to whole ticks; arrivals in between reallocate and supersede them.
    pub fn sm_eta(&self, now: SimTime) -> Option<SimTime> {
        self.flights
            .iter()
            .map(|f| {
                if f.remaining <= SM_EPS {
                    now
                } else {
                    now + (f.remaining / f.rate).ceil().max(1.0) as u64
                }
            })
            .min()
    }

    /// Integrate to `now` and drain every completed flight (in send
    /// order); reallocates if anything finished.
    pub fn sm_take_completed(&mut self, now: SimTime) -> Vec<Flight<W>> {
        self.sm_advance(now);
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.flights.len() {
            if self.flights[i].remaining <= SM_EPS {
                done.push(self.flights.remove(i));
            } else {
                i += 1;
            }
        }
        if !done.is_empty() {
            self.sm_reallocate();
        }
        done
    }
}

/// Seed of the dedicated channel RNG: a salt of the run seed, so distinct
/// runs explore distinct burst schedules with no extra configuration.
pub(crate) fn channel_seed(run_seed: u64) -> u64 {
    run_seed ^ 0x0C8A_77E1_C4A7_5EED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_iid_and_valid() {
        let cfg = ChannelConfig::default();
        assert!(cfg.is_iid());
        assert_eq!(cfg.name(), "iid");
        cfg.validate().unwrap();
        assert!(ChannelState::<u64>::new(4, &cfg, 7).is_none());
    }

    #[test]
    fn parse_round_trips_every_model() {
        assert_eq!(ChannelConfig::parse("iid").unwrap(), ChannelConfig::Iid);
        assert_eq!(
            ChannelConfig::parse("bandwidth:3").unwrap(),
            ChannelConfig::ConstantBandwidth {
                ticks_per_frame: 3,
                max_queue: 64,
            }
        );
        assert_eq!(
            ChannelConfig::parse("bandwidth:2:8").unwrap(),
            ChannelConfig::ConstantBandwidth {
                ticks_per_frame: 2,
                max_queue: 8,
            }
        );
        assert_eq!(
            ChannelConfig::parse("shared:4").unwrap(),
            ChannelConfig::SharedMedium {
                ticks_per_frame: 4,
                max_inflight: 64,
            }
        );
        assert_eq!(
            ChannelConfig::parse("gilbert:0.1:0.4").unwrap(),
            ChannelConfig::GilbertElliott {
                p_good_to_bad: 0.1,
                p_bad_to_good: 0.4,
                loss_good: 0.0,
                loss_bad: 1.0,
            }
        );
        for bad in [
            "warp",
            "bandwidth",
            "bandwidth:0",
            "bandwidth:2:0",
            "shared:x",
            "gilbert:0.1",
            "gilbert:2.0:0.5",
            "iid:3",
        ] {
            assert!(ChannelConfig::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        assert!(ChannelConfig::ConstantBandwidth {
            ticks_per_frame: 0,
            max_queue: 4,
        }
        .validate()
        .is_err());
        assert!(ChannelConfig::SharedMedium {
            ticks_per_frame: 2,
            max_inflight: 0,
        }
        .validate()
        .is_err());
        assert!(ChannelConfig::GilbertElliott {
            p_good_to_bad: f64::NAN,
            p_bad_to_good: 0.5,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
        .validate()
        .is_err());
        ChannelConfig::burst_loss_default().validate().unwrap();
    }

    #[test]
    fn cb_slots_reset_lazily_on_epoch_change() {
        let cfg = ChannelConfig::ConstantBandwidth {
            ticks_per_frame: 2,
            max_queue: 4,
        };
        let mut st = ChannelState::<u64>::new(2, &cfg, 7).unwrap();
        let (a, b) = (NodeId(0), NodeId(1));
        let slot = st.cb_slot(a, b, 0);
        slot.busy_until = SimTime(40);
        slot.inflight.push_back(SimTime(40));
        assert_eq!(st.cb_slot(a, b, 0).inflight.len(), 1, "same incarnation");
        let slot = st.cb_slot(a, b, 2);
        assert_eq!(slot.busy_until, SimTime::ZERO, "flap clears the queue");
        assert!(slot.inflight.is_empty());
    }

    #[test]
    fn ge_chain_is_deterministic_and_counts_transitions() {
        let cfg = ChannelConfig::GilbertElliott {
            p_good_to_bad: 0.3,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let run = || {
            let mut st = ChannelState::<u64>::new(2, &cfg, 7).unwrap();
            (0..200)
                .map(|_| st.ge_step(NodeId(0), NodeId(1), 0))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "chain must replay from its seed");
        let transitions = a.iter().filter(|(t, _)| *t).count();
        let losses = a.iter().filter(|(_, l)| *l).count();
        assert!(transitions > 0, "chain never moved");
        assert!(losses > 0, "bad state never lost a frame");
        // Good-state frames are never lost with loss_good = 0, so losses
        // only happen inside bursts.
        assert!(losses < 200);
    }

    #[test]
    fn all_good_chain_never_loses() {
        let cfg = ChannelConfig::GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut st = ChannelState::<u64>::new(2, &cfg, 9).unwrap();
        for _ in 0..500 {
            let (flip, lost) = st.ge_step(NodeId(0), NodeId(1), 0);
            assert!(!flip && !lost);
        }
    }

    #[test]
    fn fair_share_conserves_capacity_per_neighborhood() {
        // Three overlapping transmissions on a 4-node line 0-1-2-3:
        // spans are closed neighborhoods of the senders.
        let spans = vec![
            vec![NodeId(0), NodeId(1)],            // 0 transmits
            vec![NodeId(0), NodeId(1), NodeId(2)], // 1 transmits
            vec![NodeId(1), NodeId(2), NodeId(3)], // 2 transmits
        ];
        let cap = 0.5;
        let rates = fair_share_rates(4, &spans, cap);
        assert_eq!(rates.len(), 3);
        for x in 0..4u32 {
            let audible: f64 = spans
                .iter()
                .zip(&rates)
                .filter(|(s, _)| s.contains(&NodeId(x)))
                .map(|(_, r)| *r)
                .sum();
            assert!(
                audible <= cap + 1e-12,
                "node {x} hears {audible} > capacity {cap}"
            );
        }
        // A lone transmission gets the full rate.
        assert_eq!(
            fair_share_rates(4, &[vec![NodeId(0), NodeId(1)]], cap),
            vec![cap]
        );
    }

    #[test]
    fn shared_medium_serves_and_completes_fairly() {
        let cfg = ChannelConfig::SharedMedium {
            ticks_per_frame: 4,
            max_inflight: 8,
        };
        let mut st = ChannelState::<u64>::new(2, &cfg, 7).unwrap();
        let span = vec![NodeId(0), NodeId(1)];
        let mk = |wire: u64| Flight {
            from: NodeId(0),
            to: NodeId(1),
            link_epoch: 0,
            wire,
            remaining: 4.0,
            rate: 0.0,
            extra_delay: 0,
            span: span.clone(),
        };
        // Lone frame: full rate, completes after ticks_per_frame.
        st.sm_enqueue(mk(1), SimTime(0));
        assert_eq!(st.sm_eta(SimTime(0)), Some(SimTime(4)));
        // A second audible frame halves both rates.
        st.sm_enqueue(mk(2), SimTime(2));
        let eta = st.sm_eta(SimTime(2)).unwrap();
        assert!(
            eta > SimTime(4),
            "contention must stretch completion: {eta:?}"
        );
        assert!(st.sm_take_completed(SimTime(2)).is_empty());
        let done = st.sm_take_completed(eta);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].wire, 1, "FIFO: the older frame finishes first");
        // The survivor speeds back up to the full rate and finishes.
        let eta2 = st.sm_eta(eta).unwrap();
        let done = st.sm_take_completed(eta2);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].wire, 2);
        assert!(st.flights.is_empty());
        assert_eq!(st.sm_eta(eta2), None);
    }

    #[test]
    fn sm_audible_counts_only_overlapping_senders() {
        let cfg = ChannelConfig::SharedMedium {
            ticks_per_frame: 2,
            max_inflight: 8,
        };
        let mut st = ChannelState::<u64>::new(4, &cfg, 7).unwrap();
        st.sm_enqueue(
            Flight {
                from: NodeId(0),
                to: NodeId(1),
                link_epoch: 0,
                wire: 1,
                remaining: 2.0,
                rate: 0.0,
                extra_delay: 0,
                span: vec![NodeId(0), NodeId(1)],
            },
            SimTime(0),
        );
        assert_eq!(st.sm_audible(&[NodeId(0), NodeId(1)]), 1);
        assert_eq!(st.sm_audible(&[NodeId(2), NodeId(3)]), 0);
    }
}
