//! Observation hooks: how the harness watches a run and reacts to it.

use crate::command::Command;
use crate::ids::NodeId;
use crate::protocol::DiningState;
use crate::time::SimTime;
use crate::world::World;

/// A read-only view of the engine state passed to hooks.
///
/// The view exposes *global* information (every node's dining state, the full
/// topology) that no protocol may see; it exists for checkers and metrics
/// only.
pub struct View<'a> {
    pub(crate) now: SimTime,
    pub(crate) world: &'a World,
    pub(crate) dining: &'a [DiningState],
    pub(crate) eating_session: &'a [u64],
}

impl<'a> View<'a> {
    /// Compose a view from host-owned state, for driving hooks *outside*
    /// the engine — the live runtime's trace validator replays a captured
    /// run through the same [`Hook`] implementations (notably the safety
    /// monitor) that watch simulated runs. `dining` and `eating_session`
    /// must have one entry per node of `world`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `world.len()`.
    pub fn compose(
        now: SimTime,
        world: &'a World,
        dining: &'a [DiningState],
        eating_session: &'a [u64],
    ) -> View<'a> {
        assert_eq!(dining.len(), world.len(), "one dining state per node");
        assert_eq!(eating_session.len(), world.len(), "one session per node");
        View {
            now,
            world,
            dining,
            eating_session,
        }
    }
}

impl View<'_> {
    /// Current virtual time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the system.
    pub fn len(&self) -> usize {
        self.world.len()
    }

    /// True when the simulated system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.world.is_empty()
    }

    /// The physical world (topology, positions, crash and motion flags).
    pub fn world(&self) -> &World {
        self.world
    }

    /// Dining state of `n` as cached by the engine.
    pub fn dining(&self, n: NodeId) -> DiningState {
        self.dining[n.index()]
    }

    /// Monotonic counter of eating sessions entered by `n`.
    pub fn eating_session(&self, n: NodeId) -> u64 {
        self.eating_session[n.index()]
    }

    /// Iterate over all node IDs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.world.len() as u32).map(NodeId)
    }
}

/// Collector for commands a hook wants to schedule.
pub struct Sink {
    pub(crate) scheduled: Vec<(SimTime, Command)>,
}

impl Sink {
    /// An empty sink for hosts that drive hooks outside the engine (see
    /// [`View::compose`]). Commands the hook schedules are collected and
    /// can be inspected via [`Sink::drain`]; hosts that cannot honor them
    /// should treat a non-empty drain as an error.
    pub fn detached() -> Sink {
        Sink {
            scheduled: Vec::new(),
        }
    }

    /// Take the commands scheduled so far (host-side counterpart of the
    /// engine's internal drain).
    pub fn drain(&mut self) -> Vec<(SimTime, Command)> {
        std::mem::take(&mut self.scheduled)
    }

    /// Schedule `cmd` to execute at absolute time `at` (clamped to be not
    /// earlier than the current time by the engine).
    pub fn at(&mut self, at: SimTime, cmd: Command) {
        self.scheduled.push((at, cmd));
    }
}

/// An observer of a simulation run.
///
/// Hooks power everything the harness does: the safety checker asserts the
/// local mutual exclusion invariant, the workload schedules exits after a
/// node starts eating, metrics record response times, and fault injectors
/// watch for trigger conditions. All methods default to no-ops.
#[allow(unused_variables)]
pub trait Hook<M> {
    /// A node's dining state changed (`old` → `new`) at `view.time()`.
    fn on_state_change(
        &mut self,
        view: &View<'_>,
        node: NodeId,
        old: DiningState,
        new: DiningState,
        sink: &mut Sink,
    ) {
    }

    /// Called once whenever virtual time is about to advance past `view.time()`,
    /// i.e. after all events of the current instant have been processed.
    /// Configuration-level invariants (such as local mutual exclusion)
    /// should be checked here.
    fn on_quantum_end(&mut self, view: &View<'_>, sink: &mut Sink) {}

    /// A link between `a` and `b` was created (`a` is the designated static
    /// side).
    fn on_link_up(&mut self, view: &View<'_>, a: NodeId, b: NodeId, sink: &mut Sink) {}

    /// The link between `a` and `b` failed.
    fn on_link_down(&mut self, view: &View<'_>, a: NodeId, b: NodeId, sink: &mut Sink) {}

    /// `node` crashed.
    fn on_crash(&mut self, view: &View<'_>, node: NodeId, sink: &mut Sink) {}

    /// A crashed `node` recovered as a fresh incarnation. Fires before
    /// the rejoin link flaps; observers holding per-node state keyed to
    /// the dead incarnation (open episodes, stale sessions) should drop
    /// it here.
    fn on_recover(&mut self, view: &View<'_>, node: NodeId, sink: &mut Sink) {}

    /// `node` started (`started = true`) or finished moving.
    fn on_move(&mut self, view: &View<'_>, node: NodeId, started: bool, sink: &mut Sink) {}

    /// A message from `from` to `to` was handed to the receiving protocol.
    fn on_deliver(&mut self, view: &View<'_>, from: NodeId, to: NodeId, msg: &M, sink: &mut Sink) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Position;

    #[test]
    fn view_exposes_engine_state() {
        let world = World::new(1.5, vec![Position::default(), Position { x: 1.0, y: 0.0 }]);
        let dining = [DiningState::Thinking, DiningState::Eating];
        let sessions = [0u64, 3u64];
        let view = View {
            now: SimTime(9),
            world: &world,
            dining: &dining,
            eating_session: &sessions,
        };
        assert_eq!(view.time(), SimTime(9));
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.dining(NodeId(1)), DiningState::Eating);
        assert_eq!(view.eating_session(NodeId(1)), 3);
        assert_eq!(view.nodes().count(), 2);
    }

    #[test]
    fn sink_collects_commands() {
        let mut sink = Sink { scheduled: vec![] };
        sink.at(SimTime(5), Command::SetHungry(NodeId(0)));
        assert_eq!(sink.scheduled.len(), 1);
    }
}
