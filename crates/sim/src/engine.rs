//! The discrete-event engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::command::Command;
use crate::config::SimConfig;
use crate::event::{Event, LinkUpKind};
use crate::hooks::{Hook, Sink, View};
use crate::ids::NodeId;
use crate::protocol::{Context, DiningState, Protocol};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEntry, TraceKind};
use crate::world::{LinkChange, Position, World};

/// Information handed to the node factory when constructing each protocol
/// instance.
#[derive(Clone, Debug)]
pub struct NodeSeed {
    /// The node's unique ID.
    pub id: NodeId,
    /// The node's initial neighbors (sorted by ID). Initial links are
    /// established without LinkUp notifications; initial shared state (e.g.
    /// fork placement by ID) is derived from this set.
    pub neighbors: Vec<NodeId>,
    /// Total number of nodes in the system (the paper's `n`; only the
    /// knowledge-of-`n` algorithm variants may consult it).
    pub n_nodes: usize,
    /// Maximum degree of the initial topology (the paper's δ; only the
    /// knowledge-of-δ algorithm variants may consult it).
    pub max_degree: usize,
}

/// Counters accumulated over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total events processed.
    pub events: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to protocols.
    pub messages_delivered: u64,
    /// Messages dropped because their link failed (or epoch changed) before
    /// delivery.
    pub messages_dropped: u64,
}

enum Item<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        link_epoch: u64,
    },
    Proto {
        node: NodeId,
        ev: Event<M>,
    },
    Command(Command),
    MoveStep {
        node: NodeId,
        epoch: u64,
    },
    MotionDone {
        node: NodeId,
        epoch: u64,
    },
}

struct Queued<M> {
    at: SimTime,
    seq: u64,
    item: Item<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Core<M> {
    cfg: SimConfig,
    rng: StdRng,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Queued<M>>>,
    world: World,
    dining: Vec<DiningState>,
    eating_session: Vec<u64>,
    /// Last scheduled arrival per directed pair, to enforce FIFO channels.
    fifo_last: HashMap<(u32, u32), SimTime>,
    /// Incarnation counter per undirected link; messages of dead
    /// incarnations are dropped.
    link_epoch: HashMap<(u32, u32), u64>,
    stats: EngineStats,
    trace: Trace,
}

impl<M> Core<M> {
    fn push(&mut self, at: SimTime, item: Item<M>) {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(Reverse(Queued {
            at,
            seq: self.seq,
            item,
        }));
    }

    fn current_link_epoch(&self, a: NodeId, b: NodeId) -> u64 {
        let key = norm(a, b);
        *self.link_epoch.get(&key).unwrap_or(&0)
    }

    fn view<'a>(&'a self) -> View<'a> {
        View {
            now: self.now,
            world: &self.world,
            dining: &self.dining,
            eating_session: &self.eating_session,
        }
    }
}

fn norm(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// The deterministic discrete-event simulation engine.
///
/// An `Engine` owns one protocol instance per node, the physical
/// [`World`], the event queue and the observation [`Hook`]s. See the crate
/// docs for an end-to-end example.
pub struct Engine<P: Protocol> {
    core: Core<P::Msg>,
    protocols: Vec<P>,
    hooks: Vec<Box<dyn Hook<P::Msg>>>,
}

impl<P: Protocol> Engine<P> {
    /// Create an engine with nodes at `positions`; the factory builds each
    /// node's protocol from its [`NodeSeed`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn new<Pos, F>(cfg: SimConfig, positions: Vec<Pos>, mut factory: F) -> Engine<P>
    where
        Pos: Into<Position>,
        F: FnMut(NodeSeed) -> P,
    {
        cfg.validate().expect("invalid SimConfig");
        let world = World::new(
            cfg.radio_range,
            positions.into_iter().map(Into::into).collect(),
        );
        let n = world.len();
        let max_degree = world.max_degree();
        let protocols = (0..n)
            .map(|i| {
                let id = NodeId(i as u32);
                factory(NodeSeed {
                    id,
                    neighbors: world.neighbors(id).to_vec(),
                    n_nodes: n,
                    max_degree,
                })
            })
            .collect::<Vec<_>>();
        let dining = protocols.iter().map(|p| p.dining_state()).collect();
        let trace = Trace {
            enabled: cfg.trace,
            ..Trace::default()
        };
        Engine {
            core: Core {
                rng: StdRng::seed_from_u64(cfg.seed),
                cfg,
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                world,
                dining,
                eating_session: vec![0; n],
                fifo_last: HashMap::new(),
                link_epoch: HashMap::new(),
                stats: EngineStats::default(),
                trace,
            },
            protocols,
            hooks: Vec::new(),
        }
    }

    /// Create an engine over an *explicit* topology (see
    /// [`World::from_adjacency`]): `n` nodes wired exactly by `edges`,
    /// independent of geometry. Movement commands are rejected in such
    /// worlds; crashes work normally.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`] or `edges` is
    /// malformed.
    pub fn new_graph<F>(cfg: SimConfig, n: usize, edges: &[(u32, u32)], mut factory: F) -> Engine<P>
    where
        F: FnMut(NodeSeed) -> P,
    {
        cfg.validate().expect("invalid SimConfig");
        let world = World::from_adjacency(n, edges);
        let max_degree = world.max_degree();
        let protocols = (0..n)
            .map(|i| {
                let id = NodeId(i as u32);
                factory(NodeSeed {
                    id,
                    neighbors: world.neighbors(id).to_vec(),
                    n_nodes: n,
                    max_degree,
                })
            })
            .collect::<Vec<_>>();
        let dining = protocols.iter().map(|p| p.dining_state()).collect();
        let trace = Trace {
            enabled: cfg.trace,
            ..Trace::default()
        };
        Engine {
            core: Core {
                rng: StdRng::seed_from_u64(cfg.seed),
                cfg,
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                world,
                dining,
                eating_session: vec![0; n],
                fifo_last: HashMap::new(),
                link_epoch: HashMap::new(),
                stats: EngineStats::default(),
                trace,
            },
            protocols,
            hooks: Vec::new(),
        }
    }

    /// Register an observation hook. Hooks fire in registration order.
    pub fn add_hook(&mut self, hook: Box<dyn Hook<P::Msg>>) {
        self.hooks.push(hook);
    }

    /// Schedule a [`Command`] at absolute time `at` (clamped to now).
    pub fn schedule(&mut self, at: SimTime, cmd: Command) {
        self.core.push(at, Item::Command(cmd));
    }

    /// Sugar for scheduling [`Command::SetHungry`].
    pub fn set_hungry_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule(at, Command::SetHungry(node));
    }

    /// Sugar for scheduling [`Command::Crash`].
    pub fn crash_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule(at, Command::Crash(node));
    }

    /// Sugar for scheduling [`Command::Teleport`].
    pub fn teleport_at(&mut self, at: SimTime, node: NodeId, dest: impl Into<Position>) {
        self.schedule(
            at,
            Command::Teleport {
                node,
                dest: dest.into(),
            },
        );
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Cached dining state of `node`.
    pub fn dining_state(&self, node: NodeId) -> DiningState {
        self.core.dining[node.index()]
    }

    /// The physical world.
    pub fn world(&self) -> &World {
        &self.core.world
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &EngineStats {
        &self.core.stats
    }

    /// The recorded trace (empty unless [`SimConfig::trace`] was set).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.core.trace.entries
    }

    /// Borrow the protocol instance of `node` (for tests and inspection).
    pub fn protocol(&self, node: NodeId) -> &P {
        &self.protocols[node.index()]
    }

    /// Run until the queue is exhausted or virtual time would exceed
    /// `t_end`; returns the time reached.
    ///
    /// # Panics
    ///
    /// Panics if more than [`SimConfig::max_events`] events are processed
    /// (livelock guard).
    pub fn run_until(&mut self, t_end: SimTime) -> SimTime {
        let mut quantum_checked = false;
        loop {
            let next_at = match self.core.queue.peek() {
                Some(Reverse(q)) => q.at,
                None => {
                    if !quantum_checked {
                        self.fire_quantum_end();
                    }
                    break;
                }
            };
            if next_at > t_end {
                if !quantum_checked {
                    self.fire_quantum_end();
                    // Hooks may have scheduled events at the current instant.
                    if self
                        .core
                        .queue
                        .peek()
                        .is_some_and(|Reverse(q)| q.at <= t_end)
                    {
                        quantum_checked = false;
                        continue;
                    }
                }
                self.core.now = t_end;
                break;
            }
            if next_at > self.core.now {
                if !quantum_checked {
                    self.fire_quantum_end();
                    quantum_checked = true;
                    continue; // hooks may have scheduled events at `now`
                }
                self.core.now = next_at;
                quantum_checked = false;
                continue;
            }
            // next_at == now: process one event.
            quantum_checked = false;
            let Reverse(q) = self.core.queue.pop().expect("peeked event vanished");
            self.core.stats.events += 1;
            assert!(
                self.core.stats.events <= self.core.cfg.max_events,
                "event budget exceeded ({} events): livelock?",
                self.core.cfg.max_events
            );
            self.dispatch(q.item);
        }
        self.core.now
    }

    /// Run for `ticks` ticks past the current time.
    pub fn run_for(&mut self, ticks: u64) -> SimTime {
        let t = self.core.now + ticks;
        self.run_until(t)
    }

    fn dispatch(&mut self, item: Item<P::Msg>) {
        match item {
            Item::Deliver {
                from,
                to,
                msg,
                link_epoch,
            } => {
                let live = self.core.world.linked(from, to)
                    && self.core.current_link_epoch(from, to) == link_epoch
                    && !self.core.world.is_crashed(to);
                if !live {
                    self.core.stats.messages_dropped += 1;
                    return;
                }
                self.core.stats.messages_delivered += 1;
                self.core
                    .trace
                    .record(self.core.now, TraceKind::Deliver(from, to));
                self.fire_hooks(|h, view, sink| h.on_deliver(view, from, to, &msg, sink));
                self.deliver_proto(to, Event::Message { from, msg });
            }
            Item::Proto { node, ev } => self.deliver_proto(node, ev),
            Item::Command(cmd) => self.execute(cmd),
            Item::MoveStep { node, epoch } => self.move_step(node, epoch),
            Item::MotionDone { node, epoch } => {
                if self.core.world.is_crashed(node) {
                    return;
                }
                let live = self.core.world.motion(node).is_some_and(|m| m.epoch == epoch);
                if !live {
                    return;
                }
                self.core.world.end_motion(node);
                self.core.trace.record(self.core.now, TraceKind::MoveEnd(node));
                self.fire_hooks(|h, view, sink| h.on_move(view, node, false, sink));
                self.deliver_proto(node, Event::MovementEnded);
            }
        }
    }

    fn execute(&mut self, cmd: Command) {
        match cmd {
            Command::SetHungry(node) => {
                if !self.core.world.is_crashed(node)
                    && self.core.dining[node.index()] == DiningState::Thinking
                {
                    self.deliver_proto(node, Event::Hungry);
                }
            }
            Command::ExitCs { node, session } => {
                if !self.core.world.is_crashed(node)
                    && self.core.dining[node.index()] == DiningState::Eating
                    && self.core.eating_session[node.index()] == session
                {
                    self.deliver_proto(node, Event::ExitCs);
                }
            }
            Command::Crash(node) => {
                if !self.core.world.is_crashed(node) {
                    self.core.world.crash(node);
                    self.core.trace.record(self.core.now, TraceKind::Crash(node));
                    self.fire_hooks(|h, view, sink| h.on_crash(view, node, sink));
                }
            }
            Command::StartMove { node, dest, speed } => {
                if self.core.world.is_crashed(node) || speed <= 0.0 || speed.is_nan() {
                    return;
                }
                let step_len = speed * self.core.cfg.move_step_ticks as f64;
                let epoch = self.core.world.begin_motion(node, dest, step_len);
                self.core
                    .trace
                    .record(self.core.now, TraceKind::MoveStart(node));
                self.fire_hooks(|h, view, sink| h.on_move(view, node, true, sink));
                self.deliver_proto(node, Event::MovementStarted);
                let at = self.core.now + self.core.cfg.move_step_ticks;
                self.core.push(at, Item::MoveStep { node, epoch });
            }
            Command::Teleport { node, dest } => {
                if self.core.world.is_crashed(node) {
                    return;
                }
                // Treat the jump as an (instantaneous) movement.
                let epoch = self.core.world.begin_motion(node, dest, 0.0);
                self.core
                    .trace
                    .record(self.core.now, TraceKind::MoveStart(node));
                self.fire_hooks(|h, view, sink| h.on_move(view, node, true, sink));
                self.deliver_proto(node, Event::MovementStarted);
                let changes = self.core.world.relocate(node, dest);
                self.emit_link_changes(changes);
                // Ends after the queued link notifications are processed.
                let now = self.core.now;
                self.core.push(now, Item::MotionDone { node, epoch });
            }
        }
    }

    fn move_step(&mut self, node: NodeId, epoch: u64) {
        if self.core.world.is_crashed(node) {
            return;
        }
        let live = self.core.world.motion(node).is_some_and(|m| m.epoch == epoch);
        if !live {
            return;
        }
        let (changes, arrived) = self.core.world.step_motion(node);
        self.emit_link_changes(changes);
        let now = self.core.now;
        if arrived {
            self.core.push(now, Item::MotionDone { node, epoch });
        } else {
            let at = now + self.core.cfg.move_step_ticks;
            self.core.push(at, Item::MoveStep { node, epoch });
        }
    }

    fn emit_link_changes(&mut self, changes: Vec<LinkChange>) {
        for change in changes {
            match change {
                LinkChange::Up(a, b) => {
                    let key = norm(a, b);
                    *self.core.link_epoch.entry(key).or_insert(0) += 1;
                    // Symmetry breaking biased toward static nodes; ties
                    // between two movers broken by ID (smaller = static).
                    let a_moving = self.core.world.is_moving(a);
                    let b_moving = self.core.world.is_moving(b);
                    let static_side = match (a_moving, b_moving) {
                        (false, _) => a,
                        (true, false) => b,
                        (true, true) => {
                            if a.0 < b.0 {
                                a
                            } else {
                                b
                            }
                        }
                    };
                    let moving_side = if static_side == a { b } else { a };
                    self.core
                        .trace
                        .record(self.core.now, TraceKind::LinkUp(static_side, moving_side));
                    self.fire_hooks(|h, view, sink| {
                        h.on_link_up(view, static_side, moving_side, sink)
                    });
                    let now = self.core.now;
                    self.core.push(
                        now,
                        Item::Proto {
                            node: static_side,
                            ev: Event::LinkUp {
                                peer: moving_side,
                                kind: LinkUpKind::AsStatic,
                            },
                        },
                    );
                    self.core.push(
                        now,
                        Item::Proto {
                            node: moving_side,
                            ev: Event::LinkUp {
                                peer: static_side,
                                kind: LinkUpKind::AsMoving,
                            },
                        },
                    );
                }
                LinkChange::Down(a, b) => {
                    self.core.trace.record(self.core.now, TraceKind::LinkDown(a, b));
                    self.fire_hooks(|h, view, sink| h.on_link_down(view, a, b, sink));
                    let now = self.core.now;
                    self.core.push(
                        now,
                        Item::Proto {
                            node: a,
                            ev: Event::LinkDown { peer: b },
                        },
                    );
                    self.core.push(
                        now,
                        Item::Proto {
                            node: b,
                            ev: Event::LinkDown { peer: a },
                        },
                    );
                }
            }
        }
    }

    fn deliver_proto(&mut self, node: NodeId, ev: Event<P::Msg>) {
        if self.core.world.is_crashed(node) {
            return;
        }
        let old = self.core.dining[node.index()];
        let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut timers: Vec<(u64, u64)> = Vec::new();
        {
            let mut ctx = Context {
                me: node,
                now: self.core.now,
                neighbors: self.core.world.neighbors(node),
                moving: self.core.world.is_moving(node),
                outbox: &mut outbox,
                timers: &mut timers,
            };
            self.protocols[node.index()].on_event(ev, &mut ctx);
        }
        for (to, msg) in outbox {
            self.send(node, to, msg);
        }
        for (delay, token) in timers {
            let at = self.core.now + delay;
            self.core.push(
                at,
                Item::Proto {
                    node,
                    ev: Event::Timer { token },
                },
            );
        }
        let new = self.protocols[node.index()].dining_state();
        if new != old {
            self.core.dining[node.index()] = new;
            if new == DiningState::Eating {
                self.core.eating_session[node.index()] += 1;
            }
            self.core
                .trace
                .record(self.core.now, TraceKind::StateChange(node, old, new));
            self.fire_hooks(|h, view, sink| h.on_state_change(view, node, old, new, sink));
        }
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        if !self.core.world.linked(from, to) {
            // The neighbor departed during this very handler; the message
            // would have been lost with the link anyway.
            self.core.stats.messages_dropped += 1;
            return;
        }
        self.core.stats.messages_sent += 1;
        let delay = self
            .core
            .rng
            .gen_range(self.core.cfg.min_message_delay..=self.core.cfg.max_message_delay);
        let mut at = self.core.now + delay;
        // FIFO per directed channel.
        if let Some(&last) = self.core.fifo_last.get(&(from.0, to.0)) {
            if at <= last {
                at = last + 1;
            }
        }
        self.core.fifo_last.insert((from.0, to.0), at);
        let link_epoch = self.core.current_link_epoch(from, to);
        self.core.push(
            at,
            Item::Deliver {
                from,
                to,
                msg,
                link_epoch,
            },
        );
    }

    fn fire_quantum_end(&mut self) {
        self.fire_hooks(|h, view, sink| h.on_quantum_end(view, sink));
    }

    fn fire_hooks<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut dyn Hook<P::Msg>, &View<'_>, &mut Sink),
    {
        if self.hooks.is_empty() {
            return;
        }
        let mut sink = Sink { scheduled: vec![] };
        {
            let view = self.core.view();
            for hook in &mut self.hooks {
                f(hook.as_mut(), &view, &mut sink);
            }
        }
        for (at, cmd) in sink.scheduled {
            self.core.push(at, Item::Command(cmd));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo protocol: replies `x+1` to any numeric message; used to test
    /// delivery, FIFO and link semantics.
    struct Echo {
        state: DiningState,
        received: Vec<(NodeId, u64)>,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
            match ev {
                Event::Hungry => self.state = DiningState::Eating,
                Event::ExitCs => self.state = DiningState::Thinking,
                Event::Message { from, msg } => {
                    self.received.push((from, msg));
                    if msg < 3 {
                        ctx.send(from, msg + 1);
                    }
                }
                Event::Timer { token } => {
                    // Kick off a ping-pong with the first neighbor.
                    if let Some(&n) = ctx.neighbors().first() {
                        ctx.send(n, token);
                    }
                }
                _ => {}
            }
        }
        fn dining_state(&self) -> DiningState {
            self.state
        }
    }

    fn engine2() -> Engine<Echo> {
        Engine::new(
            SimConfig {
                trace: true,
                ..SimConfig::default()
            },
            vec![(0.0, 0.0), (1.0, 0.0)],
            |_| Echo {
                state: DiningState::Thinking,
                received: vec![],
            },
        )
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut e = engine2();
        // Fire a timer on node 0 that starts a ping-pong 0 -> 1 -> 0 ...
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(1_000));
        // 0 sent 0; 1 replied 1; 0 replied 2; 1 replied 3 (no further reply).
        assert_eq!(e.protocol(NodeId(1)).received, vec![(NodeId(0), 0), (NodeId(0), 2)]);
        assert_eq!(e.protocol(NodeId(0)).received, vec![(NodeId(1), 1), (NodeId(1), 3)]);
        assert_eq!(e.stats().messages_sent, 4);
        assert_eq!(e.stats().messages_delivered, 4);
    }

    #[test]
    fn fifo_order_is_preserved_per_channel() {
        struct Burst {
            got: Vec<u64>,
        }
        impl Protocol for Burst {
            type Msg = u64;
            fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
                match ev {
                    Event::Timer { .. } => {
                        for i in 0..50 {
                            if let Some(&n) = ctx.neighbors().first() {
                                ctx.send(n, i);
                            }
                        }
                    }
                    Event::Message { msg, .. } => self.got.push(msg),
                    _ => {}
                }
            }
            fn dining_state(&self) -> DiningState {
                DiningState::Thinking
            }
        }
        let mut e: Engine<Burst> = Engine::new(
            SimConfig::default(),
            vec![(0.0, 0.0), (1.0, 0.0)],
            |_| Burst { got: vec![] },
        );
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(10_000));
        let got = &e.protocol(NodeId(1)).got;
        assert_eq!(got.len(), 50);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "FIFO violated: {got:?}");
    }

    #[test]
    fn crashed_node_stops_processing() {
        let mut e = engine2();
        e.crash_at(SimTime(1), NodeId(1));
        e.core.push(
            SimTime(2),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 7 },
            },
        );
        e.run_until(SimTime(1_000));
        assert!(e.protocol(NodeId(1)).received.is_empty());
        assert!(e.world().is_crashed(NodeId(1)));
    }

    #[test]
    fn hungry_and_exit_commands_respect_state_and_session() {
        let mut e = engine2();
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(2));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
        // Wrong session: ignored.
        e.schedule(
            SimTime(3),
            Command::ExitCs {
                node: NodeId(0),
                session: 99,
            },
        );
        e.run_until(SimTime(4));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
        // Right session (first eating session = 1).
        e.schedule(
            SimTime(5),
            Command::ExitCs {
                node: NodeId(0),
                session: 1,
            },
        );
        e.run_until(SimTime(6));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Thinking);
    }

    #[test]
    fn teleport_generates_link_events_with_mover_semantics() {
        struct Watcher {
            ups: Vec<(NodeId, LinkUpKind)>,
            downs: Vec<NodeId>,
            move_events: u32,
        }
        impl Protocol for Watcher {
            type Msg = ();
            fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
                match ev {
                    Event::LinkUp { peer, kind } => self.ups.push((peer, kind)),
                    Event::LinkDown { peer } => self.downs.push(peer),
                    Event::MovementStarted | Event::MovementEnded => self.move_events += 1,
                    _ => {}
                }
            }
            fn dining_state(&self) -> DiningState {
                DiningState::Thinking
            }
        }
        // p0 - p1 linked; p2 isolated far away.
        let mut e: Engine<Watcher> = Engine::new(
            SimConfig::default(),
            vec![(0.0, 0.0), (1.0, 0.0), (100.0, 0.0)],
            |_| Watcher {
                ups: vec![],
                downs: vec![],
                move_events: 0,
            },
        );
        // Teleport p1 next to p2: p1 loses p0, gains p2 as the moving side.
        e.teleport_at(SimTime(5), NodeId(1), (99.0, 0.0));
        e.run_until(SimTime(10));
        assert_eq!(e.protocol(NodeId(0)).downs, vec![NodeId(1)]);
        assert_eq!(
            e.protocol(NodeId(1)).ups,
            vec![(NodeId(2), LinkUpKind::AsMoving)]
        );
        assert_eq!(
            e.protocol(NodeId(2)).ups,
            vec![(NodeId(1), LinkUpKind::AsStatic)]
        );
        assert_eq!(e.protocol(NodeId(1)).move_events, 2); // started + ended
        assert!(e.world().linked(NodeId(1), NodeId(2)));
        assert!(!e.world().linked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn messages_in_flight_die_with_their_link() {
        let mut e = engine2();
        // Long delays so the message is in flight when the link breaks.
        e.core.cfg.min_message_delay = 50;
        e.core.cfg.max_message_delay = 60;
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 9 },
            },
        );
        e.teleport_at(SimTime(5), NodeId(1), (50.0, 0.0));
        e.run_until(SimTime(1_000));
        assert!(e.protocol(NodeId(1)).received.is_empty());
        assert_eq!(e.stats().messages_dropped, 1);
    }

    #[test]
    fn smooth_movement_reaches_destination_and_churns_links() {
        let mut e = engine2();
        e.schedule(
            SimTime(1),
            Command::StartMove {
                node: NodeId(1),
                dest: Position { x: 10.0, y: 0.0 },
                speed: 0.5,
            },
        );
        e.run_until(SimTime(200));
        assert_eq!(e.world().position(NodeId(1)), Position { x: 10.0, y: 0.0 });
        assert!(!e.world().is_moving(NodeId(1)));
        assert!(!e.world().linked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut e = engine2();
            e.core.push(
                SimTime(1),
                Item::Proto {
                    node: NodeId(0),
                    ev: Event::Timer { token: 0 },
                },
            );
            e.run_until(SimTime(500));
            (e.stats().clone(), e.trace().to_vec())
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn quantum_end_hook_fires_between_instants() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Q(Rc<RefCell<Vec<SimTime>>>);
        impl Hook<u64> for Q {
            fn on_quantum_end(&mut self, view: &View<'_>, _sink: &mut Sink) {
                self.0.borrow_mut().push(view.time());
            }
        }
        let log = Rc::new(RefCell::new(vec![]));
        let mut e = engine2();
        e.add_hook(Box::new(Q(log.clone())));
        e.set_hungry_at(SimTime(3), NodeId(0));
        e.set_hungry_at(SimTime(7), NodeId(1));
        e.run_until(SimTime(10));
        let log = log.borrow();
        assert!(log.contains(&SimTime(3)) && log.contains(&SimTime(7)), "{log:?}");
        // Monotone, no duplicates of the same instant in a row beyond re-opens.
        assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }
}
