//! The discrete-event engine.

use crate::channel::{ChannelConfig, ChannelState, ChannelStats, Flight};
use crate::command::Command;
use crate::config::SimConfig;
use crate::event::{Event, LinkUpKind};
use crate::fault::FaultStats;
use crate::hooks::{Hook, Sink, View};
use crate::ids::NodeId;
use crate::protocol::{Context, DiningState, Protocol};
use crate::rng::SimRng;
use crate::sched::{self, DeliveryChoice, Strategy};
use crate::shim::{ShimState, ShimStats};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEntry, TraceKind};
use crate::wheel::EventQueue;
use crate::world::{LinkChange, Position, World};

/// Information handed to the node factory when constructing each protocol
/// instance.
#[derive(Clone, Debug)]
pub struct NodeSeed {
    /// The node's unique ID.
    pub id: NodeId,
    /// The node's initial neighbors (sorted by ID). Initial links are
    /// established without LinkUp notifications; initial shared state (e.g.
    /// fork placement by ID) is derived from this set.
    pub neighbors: Vec<NodeId>,
    /// Total number of nodes in the system (the paper's `n`; only the
    /// knowledge-of-`n` algorithm variants may consult it).
    pub n_nodes: usize,
    /// Maximum degree of the initial topology (the paper's δ; only the
    /// knowledge-of-δ algorithm variants may consult it).
    pub max_degree: usize,
}

/// Counters accumulated over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total events processed.
    pub events: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to protocols.
    pub messages_delivered: u64,
    /// Messages refused at send time because the destination link had
    /// already failed inside the sending handler (link-race losses).
    pub dropped_at_send: u64,
    /// Messages accepted by the network that died in flight: their link
    /// failed (or changed incarnation) or their destination crashed before
    /// delivery.
    pub dropped_in_flight: u64,
    /// Faults injected by the [`crate::FaultPlan`] adversary, by kind
    /// (all zero when the plan is empty).
    pub faults: FaultStats,
    /// Reliable-delivery shim activity (all zero when
    /// [`crate::SimConfig::arq`] is `None`).
    pub shim: ShimStats,
    /// Channel-model activity (all zero with the default
    /// [`crate::ChannelConfig::Iid`] model).
    pub channel: ChannelStats,
}

impl EngineStats {
    /// Total messages lost for any reason: [`EngineStats::dropped_at_send`]
    /// plus [`EngineStats::dropped_in_flight`].
    pub fn messages_dropped(&self) -> u64 {
        self.dropped_at_send + self.dropped_in_flight
    }
}

enum Item<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        link_epoch: u64,
    },
    Proto {
        node: NodeId,
        ev: Event<M>,
    },
    Command(Command),
    MoveStep {
        node: NodeId,
        epoch: u64,
    },
    MotionDone {
        node: NodeId,
        epoch: u64,
    },
    /// A sequenced ARQ data frame in flight (shim mode only).
    ShimData {
        from: NodeId,
        to: NodeId,
        msg: M,
        link_epoch: u64,
        seq: u64,
        ack: u64,
    },
    /// A standalone cumulative acknowledgment in flight: `from` confirms
    /// in-order receipt of the reverse data channel `to → from` up to
    /// sequence `ack`.
    ShimAck {
        from: NodeId,
        to: NodeId,
        link_epoch: u64,
        ack: u64,
    },
    /// Retransmission timeout of the `from → to` ARQ sender; stale
    /// generations (superseded by a re-arm) and dead incarnations no-op.
    ShimRto {
        from: NodeId,
        to: NodeId,
        epoch: u64,
        gen: u64,
    },
    /// Idle-ack timeout of the receiver of the `from → to` data channel.
    ShimAckIdle {
        from: NodeId,
        to: NodeId,
        epoch: u64,
        gen: u64,
    },
    /// Completion scan of the shared-medium channel model; stale
    /// generations (superseded by a fair-share reallocation) no-op.
    ChannelTick {
        gen: u64,
    },
}

/// A physical frame about to be handed to the channel: what the shim (or
/// its absence) puts on the wire for one [`Engine::send`].
enum Wire<M> {
    /// Shim disabled: the bare protocol message, exactly as always.
    Plain(M),
    /// Sequenced shim data frame with a piggybacked cumulative ack.
    Data { seq: u64, ack: u64, msg: M },
    /// Standalone cumulative ack.
    Ack { ack: u64 },
}

impl<M: Clone> Clone for Wire<M> {
    fn clone(&self) -> Wire<M> {
        match self {
            Wire::Plain(m) => Wire::Plain(m.clone()),
            Wire::Data { seq, ack, msg } => Wire::Data {
                seq: *seq,
                ack: *ack,
                msg: msg.clone(),
            },
            Wire::Ack { ack } => Wire::Ack { ack: *ack },
        }
    }
}

/// A structured reason a run stopped early. Replaces the panics that used
/// to fire inside worker threads (killing whole parallel sweeps when one
/// pathological cell tripped): the engine records the abort, stops
/// dispatching, and reports surface it in their JSONL rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunAbort {
    /// The livelock guard tripped: the run dispatched
    /// [`SimConfig::max_events`] events before reaching its horizon.
    EventBudgetExceeded {
        /// The configured budget ([`SimConfig::max_events`]).
        limit: u64,
    },
    /// A delivery delay was produced outside the legal `[min_delay, ν]`
    /// window — a malformed imported schedule, a buggy policy, or a
    /// misconfigured channel model whose per-frame transmit time does not
    /// fit the window. The engine used to clamp such delays silently,
    /// which masked the corruption while reordering the replayed run.
    DelayOutOfWindow {
        /// Who produced the offending delay: `"strategy"` for an injected
        /// schedule, otherwise the channel model's
        /// [`ChannelConfig::name`].
        channel: &'static str,
        /// The sender of the offending delivery.
        from: NodeId,
        /// The destination of the offending delivery.
        to: NodeId,
        /// The delay that was produced.
        delay: u64,
        /// Smallest legal delay ([`SimConfig::min_message_delay`]).
        earliest: u64,
        /// Largest legal delay (the paper's ν).
        latest: u64,
    },
    /// A channel model's bounded transmit queue overflowed: the protocol
    /// kept sending faster than the configured link capacity (or medium
    /// share) could drain. A structured stop, not a panic — the bound is
    /// [`ChannelConfig::ConstantBandwidth::max_queue`] or
    /// [`ChannelConfig::SharedMedium::max_inflight`].
    ChannelQueueOverflow {
        /// The sender of the overflowing channel.
        from: NodeId,
        /// The destination of the overflowing channel.
        to: NodeId,
        /// The configured queue bound.
        limit: usize,
    },
    /// The reliable-delivery shim's bounded in-flight buffer overflowed on
    /// one directed link: the sender kept producing while the channel
    /// never acknowledged. A structured stop (the protocol is outrunning
    /// the configured [`crate::ArqConfig::window`]), not a panic.
    ShimBufferOverflow {
        /// The sender of the overflowing channel.
        from: NodeId,
        /// The destination of the overflowing channel.
        to: NodeId,
        /// The configured window ([`crate::ArqConfig::window`]).
        window: usize,
    },
}

impl std::fmt::Display for RunAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunAbort::EventBudgetExceeded { limit } => {
                write!(f, "event budget exceeded ({limit} events): livelock?")
            }
            RunAbort::DelayOutOfWindow {
                channel,
                from,
                to,
                delay,
                earliest,
                latest,
            } => write!(
                f,
                "{channel} delay {delay} on channel {}->{} outside legal window [{earliest}, {latest}]",
                from.0, to.0
            ),
            RunAbort::ChannelQueueOverflow { from, to, limit } => write!(
                f,
                "channel transmit queue overflow on {}->{} ({limit} frames in flight)",
                from.0, to.0
            ),
            RunAbort::ShimBufferOverflow { from, to, window } => write!(
                f,
                "ARQ shim buffer overflow on channel {}->{} ({window} unacked frames)",
                from.0, to.0
            ),
        }
    }
}

/// Per-directed-channel FIFO bookkeeping, valid only for one link
/// incarnation: once the link's epoch moves past `epoch`, the entry is
/// stale and the clamp restarts — a reconnected link must not inherit
/// arrival floors from its dead incarnation.
#[derive(Clone, Copy, Debug, Default)]
struct FifoSlot {
    epoch: u64,
    last: SimTime,
}

/// Per-directed-channel delivery counter, scoped to one link incarnation
/// exactly like [`FifoSlot`]: a reconnected link restarts numbering at 1.
#[derive(Clone, Copy, Debug, Default)]
struct DeliverSlot {
    epoch: u64,
    count: u64,
}

/// Dense per-link bookkeeping, indexed by node-ID pairs. Replaces the
/// `HashMap`s that used to sit on the per-message hot path: `n` is fixed
/// for the lifetime of a run, so flat `n²`-sized tables give O(1) access
/// with no hashing, no allocation, and no unbounded growth under link
/// churn.
#[derive(Clone, Debug)]
struct LinkTable {
    n: usize,
    /// Incarnation counter per undirected link (indexed with `a ≤ b`);
    /// messages of dead incarnations are dropped.
    epoch: Vec<u64>,
    /// Last scheduled arrival per directed channel, to enforce FIFO.
    fifo: Vec<FifoSlot>,
    /// Delivered-message counter per directed channel (trace numbering).
    deliver: Vec<DeliverSlot>,
}

impl LinkTable {
    fn new(n: usize) -> LinkTable {
        LinkTable {
            n,
            epoch: vec![0; n * n],
            fifo: vec![FifoSlot::default(); n * n],
            deliver: vec![DeliverSlot::default(); n * n],
        }
    }

    fn undirected(&self, a: NodeId, b: NodeId) -> usize {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        lo as usize * self.n + hi as usize
    }

    fn directed(&self, from: NodeId, to: NodeId) -> usize {
        from.0 as usize * self.n + to.0 as usize
    }

    fn current_epoch(&self, a: NodeId, b: NodeId) -> u64 {
        self.epoch[self.undirected(a, b)]
    }

    fn bump_epoch(&mut self, a: NodeId, b: NodeId) {
        let i = self.undirected(a, b);
        self.epoch[i] += 1;
    }

    /// FIFO floor of the `from → to` channel in its *current* incarnation,
    /// or `None` if the recorded floor belongs to a dead incarnation.
    fn fifo_floor(&self, from: NodeId, to: NodeId) -> Option<SimTime> {
        let slot = self.fifo[self.directed(from, to)];
        (slot.epoch == self.current_epoch(from, to)).then_some(slot.last)
    }

    fn set_fifo_floor(&mut self, from: NodeId, to: NodeId, at: SimTime) {
        let epoch = self.current_epoch(from, to);
        let i = self.directed(from, to);
        self.fifo[i] = FifoSlot { epoch, last: at };
    }

    /// 1-based sequence number of the next delivery on `from → to` within
    /// the link's current incarnation.
    fn next_deliver_seq(&mut self, from: NodeId, to: NodeId) -> u64 {
        let epoch = self.current_epoch(from, to);
        let i = self.directed(from, to);
        let slot = &mut self.deliver[i];
        if slot.epoch != epoch {
            *slot = DeliverSlot { epoch, count: 0 };
        }
        slot.count += 1;
        slot.count
    }
}

struct Core<M> {
    cfg: SimConfig,
    rng: SimRng,
    /// Dedicated stream for fault-adversary decisions, so an empty
    /// [`crate::FaultPlan`] leaves the engine's own stream — and thus
    /// every pre-existing experiment — bit-for-bit unchanged.
    fault_rng: SimRng,
    now: SimTime,
    seq: u64,
    queue: EventQueue<Item<M>>,
    /// Set when the run stops early (budget overrun, malformed schedule);
    /// once set, `run_until` dispatches nothing further.
    abort: Option<RunAbort>,
    world: World,
    dining: Vec<DiningState>,
    eating_session: Vec<u64>,
    links: LinkTable,
    stats: EngineStats,
    trace: Trace,
    /// Injected schedule strategy; `None` keeps the historical seeded
    /// uniform delay draw, bit-for-bit.
    sched: Option<Box<dyn Strategy>>,
    /// Reliable-delivery shim state; `None` (the default) keeps the
    /// engine's behavior — streams, traces, digests — bit-for-bit
    /// identical to a build without the shim.
    shim: Option<ShimState<M>>,
    /// Channel-model state; `None` for the default i.i.d. model, which
    /// keeps the engine's behavior — streams, traces, digests —
    /// bit-for-bit identical to a build without the channel subsystem.
    channel: Option<ChannelState<Wire<M>>>,
}

impl<M> Core<M> {
    /// Queue `item` at `at`. Internal callers must never schedule in the
    /// past — the old `at.max(now)` clamp silently reordered events and
    /// masked such bugs; injected-schedule inputs are validated explicitly
    /// at their entry points (`Engine::schedule`, hook sinks, strategy
    /// delays) before they reach this seam.
    fn push(&mut self, at: SimTime, item: Item<M>) {
        debug_assert!(
            at >= self.now,
            "internal event scheduled in the past: at {at:?} < now {:?}",
            self.now
        );
        self.seq += 1;
        self.queue.push(at, self.seq, item);
    }

    fn view<'a>(&'a self) -> View<'a> {
        View {
            now: self.now,
            world: &self.world,
            dining: &self.dining,
            eating_session: &self.eating_session,
        }
    }
}

/// The deterministic discrete-event simulation engine.
///
/// An `Engine` owns one protocol instance per node, the physical
/// [`World`], the event queue and the observation [`Hook`]s. See the crate
/// docs for an end-to-end example.
pub struct Engine<P: Protocol> {
    core: Core<P::Msg>,
    protocols: Vec<P>,
    hooks: Vec<Box<dyn Hook<P::Msg>>>,
    /// The node factory, retained so [`Command::Recover`] can rebuild a
    /// crashed node's protocol as a fresh incarnation.
    factory: Box<dyn FnMut(NodeSeed) -> P>,
    /// δ of the initial topology, handed to recovered incarnations
    /// exactly as it was handed to the original ones.
    max_degree: usize,
}

impl<P: Protocol> Engine<P> {
    /// Create an engine with nodes at `positions`; the factory builds each
    /// node's protocol from its [`NodeSeed`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    pub fn new<Pos, F>(cfg: SimConfig, positions: Vec<Pos>, mut factory: F) -> Engine<P>
    where
        Pos: Into<Position>,
        F: FnMut(NodeSeed) -> P + 'static,
    {
        cfg.validate().expect("invalid SimConfig");
        let world = World::with_engine(
            cfg.radio_range,
            positions.into_iter().map(Into::into).collect(),
            cfg.link_engine,
        );
        let n = world.len();
        let max_degree = world.max_degree();
        let protocols = (0..n)
            .map(|i| {
                let id = NodeId(i as u32);
                factory(NodeSeed {
                    id,
                    neighbors: world.neighbors(id).to_vec(),
                    n_nodes: n,
                    max_degree,
                })
            })
            .collect::<Vec<_>>();
        let dining = protocols.iter().map(|p| p.dining_state()).collect();
        let trace = Trace {
            enabled: cfg.trace,
            ..Trace::default()
        };
        let shim = cfg
            .arq
            .as_ref()
            .map(|a| ShimState::new(n, a, cfg.max_message_delay, cfg.seed));
        let channel = ChannelState::new(n, &cfg.channel, cfg.seed);
        let mut engine = Engine {
            core: Core {
                rng: SimRng::seed_from_u64(cfg.seed),
                fault_rng: SimRng::seed_from_u64(fault_seed(&cfg)),
                queue: EventQueue::from_config(&cfg),
                cfg,
                now: SimTime::ZERO,
                seq: 0,
                abort: None,
                world,
                dining,
                eating_session: vec![0; n],
                links: LinkTable::new(n),
                stats: EngineStats::default(),
                trace,
                sched: None,
                shim,
                channel,
            },
            protocols,
            hooks: Vec::new(),
            factory: Box::new(factory),
            max_degree,
        };
        engine.install_fault_plan();
        engine
    }

    /// Create an engine over an *explicit* topology (see
    /// [`World::from_adjacency`]): `n` nodes wired exactly by `edges`,
    /// independent of geometry. Movement commands are rejected in such
    /// worlds; crashes work normally.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`] or `edges` is
    /// malformed.
    pub fn new_graph<F>(cfg: SimConfig, n: usize, edges: &[(u32, u32)], mut factory: F) -> Engine<P>
    where
        F: FnMut(NodeSeed) -> P + 'static,
    {
        cfg.validate().expect("invalid SimConfig");
        let world = World::from_adjacency(n, edges);
        let max_degree = world.max_degree();
        let protocols = (0..n)
            .map(|i| {
                let id = NodeId(i as u32);
                factory(NodeSeed {
                    id,
                    neighbors: world.neighbors(id).to_vec(),
                    n_nodes: n,
                    max_degree,
                })
            })
            .collect::<Vec<_>>();
        let dining = protocols.iter().map(|p| p.dining_state()).collect();
        let trace = Trace {
            enabled: cfg.trace,
            ..Trace::default()
        };
        let shim = cfg
            .arq
            .as_ref()
            .map(|a| ShimState::new(n, a, cfg.max_message_delay, cfg.seed));
        let channel = ChannelState::new(n, &cfg.channel, cfg.seed);
        let mut engine = Engine {
            core: Core {
                rng: SimRng::seed_from_u64(cfg.seed),
                fault_rng: SimRng::seed_from_u64(fault_seed(&cfg)),
                queue: EventQueue::from_config(&cfg),
                cfg,
                now: SimTime::ZERO,
                seq: 0,
                abort: None,
                world,
                dining,
                eating_session: vec![0; n],
                links: LinkTable::new(n),
                stats: EngineStats::default(),
                trace,
                sched: None,
                shim,
                channel,
            },
            protocols,
            hooks: Vec::new(),
            factory: Box::new(factory),
            max_degree,
        };
        engine.install_fault_plan();
        engine
    }

    /// Validate the configured [`crate::FaultPlan`] against the real node
    /// count and schedule its scripted parts (crash waves, partition
    /// windows) as ordinary commands.
    fn install_fault_plan(&mut self) {
        self.core
            .cfg
            .fault
            .validate(self.core.world.len())
            .expect("invalid FaultPlan");
        if self.core.cfg.fault.is_empty() {
            return;
        }
        let plan = self.core.cfg.fault.clone();
        for wave in &plan.crash_waves {
            for &node in &wave.nodes {
                self.core.stats.faults.crashes_injected += 1;
                self.core
                    .push(SimTime(wave.at), Item::Command(Command::Crash(node)));
            }
        }
        for window in &plan.partitions {
            self.core.push(
                SimTime(window.at),
                Item::Command(Command::Partition {
                    side: window.side.clone(),
                }),
            );
            self.core.push(
                SimTime(window.at.saturating_add(window.heal_after)),
                Item::Command(Command::Heal),
            );
        }
        // Recoveries count at execution time (unlike crash waves): a
        // recover scheduled for a node that is not actually crashed by
        // then is a no-op and must not inflate the ledger.
        for wave in &plan.recovers {
            for &node in &wave.nodes {
                self.core
                    .push(SimTime(wave.at), Item::Command(Command::Recover(node)));
            }
        }
    }

    /// Register an observation hook. Hooks fire in registration order.
    pub fn add_hook(&mut self, hook: Box<dyn Hook<P::Msg>>) {
        self.hooks.push(hook);
    }

    /// Schedule a [`Command`] at absolute time `at` (clamped to now).
    pub fn schedule(&mut self, at: SimTime, cmd: Command) {
        // External surface: callers may legitimately hand in an instant the
        // run has already passed (e.g. re-scheduling between `run_until`
        // calls), so the clamp is part of the contract here.
        let at = at.max(self.core.now);
        self.core.push(at, Item::Command(cmd));
    }

    /// Sugar for scheduling [`Command::SetHungry`].
    pub fn set_hungry_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule(at, Command::SetHungry(node));
    }

    /// Sugar for scheduling [`Command::Crash`].
    pub fn crash_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule(at, Command::Crash(node));
    }

    /// Sugar for scheduling [`Command::Recover`].
    pub fn recover_at(&mut self, at: SimTime, node: NodeId) {
        self.schedule(at, Command::Recover(node));
    }

    /// Sugar for scheduling [`Command::Teleport`].
    pub fn teleport_at(&mut self, at: SimTime, node: NodeId, dest: impl Into<Position>) {
        self.schedule(
            at,
            Command::Teleport {
                node,
                dest: dest.into(),
            },
        );
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Cached dining state of `node`.
    pub fn dining_state(&self, node: NodeId) -> DiningState {
        self.core.dining[node.index()]
    }

    /// The physical world.
    pub fn world(&self) -> &World {
        &self.core.world
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &EngineStats {
        &self.core.stats
    }

    /// Why the run stopped early, if it did: `None` while the run is
    /// healthy, the structured reason once the livelock guard trips or an
    /// injected schedule misbehaves (see [`RunAbort`]). Once set, further
    /// [`Engine::run_until`] calls dispatch nothing.
    pub fn abort(&self) -> Option<&RunAbort> {
        self.core.abort.as_ref()
    }

    /// The recorded trace (empty unless [`SimConfig::trace`] was set).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.core.trace.entries
    }

    /// Borrow the protocol instance of `node` (for tests and inspection).
    pub fn protocol(&self, node: NodeId) -> &P {
        &self.protocols[node.index()]
    }

    /// Install a schedule [`Strategy`]: from now on it picks every delivery
    /// delay within the legal `[min_delay, ν]` window, replacing the seeded
    /// uniform draw. Install before running — choices already made are not
    /// revisited.
    pub fn set_strategy(&mut self, strategy: Box<dyn Strategy>) {
        self.core.sched = Some(strategy);
    }

    /// Number of queued, not-yet-dispatched events. Zero at the end of a
    /// run means the run reached quiescence (rather than the horizon).
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Deterministic digest of the global engine state — every protocol's
    /// `state_digest`, all dining states and eating sessions, and the
    /// ordered signature of the pending event queue. `None` if any protocol
    /// does not implement `state_digest`.
    ///
    /// The current instant is deliberately excluded: two executions that
    /// reach identical protocol states and identical *absolute* pending
    /// times at different `now`s evolve identically, and schedule explorers
    /// want to deduplicate exactly those.
    pub fn state_digest(&self) -> Option<u64> {
        let mut h = sched::Fnv::new();
        for p in &self.protocols {
            h.write_u64(p.state_digest()?);
        }
        for (d, s) in self.core.dining.iter().zip(&self.core.eating_session) {
            h.write_u64(match d {
                DiningState::Thinking => 0,
                DiningState::Hungry => 1,
                DiningState::Eating => 2,
            });
            h.write_u64(*s);
        }
        // Queue signature in dispatch order: sort by (at, seq) but hash
        // only (at, content) — the insertion-order seq values differ across
        // histories even when the executions are equivalent, while the
        // *relative* order they induce is exactly what matters.
        let mut items: Vec<(SimTime, u64, u64)> = self
            .core
            .queue
            .iter()
            .map(|(at, seq, item)| (at, seq, item_digest(item)))
            .collect();
        items.sort_unstable();
        for (at, _, content) in items {
            h.write_u64(at.0);
            h.write_u64(content);
        }
        Some(h.finish())
    }

    /// Deterministic digest of the engine's *progress* state, for liveness
    /// (lasso) detection: every protocol's `progress_digest` (monotone
    /// observational counters excluded), all dining states, and the pending
    /// queue signature at times **relative to now**. Eating-session
    /// counters are excluded too — they only grow. A digest that repeats at
    /// a later instant of the same run certifies a schedulable cycle: the
    /// engine is in the same behavioral configuration with the same
    /// in-flight events at the same offsets, so the delay choices of the
    /// intervening segment are legal again, verbatim, forever. `None` if
    /// any protocol opts out of `progress_digest`.
    pub fn progress_digest(&self) -> Option<u64> {
        let mut h = sched::Fnv::new();
        for p in &self.protocols {
            h.write_u64(p.progress_digest()?);
        }
        for d in self.core.dining.iter() {
            h.write_u64(match d {
                DiningState::Thinking => 0,
                DiningState::Hungry => 1,
                DiningState::Eating => 2,
            });
        }
        let now = self.core.now;
        let mut items: Vec<(SimTime, u64, u64)> = self
            .core
            .queue
            .iter()
            .map(|(at, seq, item)| (at, seq, item_digest(item)))
            .collect();
        items.sort_unstable();
        for (at, _, content) in items {
            h.write_u64(at.0.saturating_sub(now.0));
            h.write_u64(content);
        }
        Some(h.finish())
    }

    /// Run until the queue is exhausted or virtual time would exceed
    /// `t_end`; returns the time reached.
    ///
    /// The run can also stop early with a structured [`RunAbort`] (see
    /// [`Engine::abort`]): when [`SimConfig::max_events`] events have been
    /// dispatched (livelock guard), or when an injected [`Strategy`]
    /// returns a delivery delay outside the legal window. Aborted engines
    /// stay inspectable — stats, trace and queue are all intact — but
    /// dispatch nothing further.
    pub fn run_until(&mut self, t_end: SimTime) -> SimTime {
        let mut quantum_checked = false;
        loop {
            if self.core.abort.is_some() {
                break;
            }
            let next_at = match self.core.queue.next_at() {
                Some(at) => at,
                None => {
                    if !quantum_checked {
                        self.fire_quantum_end();
                    }
                    break;
                }
            };
            if next_at > t_end {
                if !quantum_checked {
                    self.fire_quantum_end();
                    // Hooks may have scheduled events at the current instant.
                    if self.core.queue.next_at().is_some_and(|at| at <= t_end) {
                        quantum_checked = false;
                        continue;
                    }
                }
                self.core.now = t_end;
                break;
            }
            if next_at > self.core.now {
                if !quantum_checked {
                    self.fire_quantum_end();
                    quantum_checked = true;
                    continue; // hooks may have scheduled events at `now`
                }
                self.core.now = next_at;
                quantum_checked = false;
                continue;
            }
            // next_at == now: process one event. The budget check runs
            // before the pop so the guard is a clean stop, not a panic
            // mid-dispatch: exactly `max_events` events get dispatched,
            // same boundary the old assert enforced.
            quantum_checked = false;
            if self.core.stats.events >= self.core.cfg.max_events {
                self.core.abort = Some(RunAbort::EventBudgetExceeded {
                    limit: self.core.cfg.max_events,
                });
                break;
            }
            // The queue's peek caches the exact entry its pop returns, so
            // the two cannot desynchronize; an empty pop here is impossible
            // but degrades to a clean stop instead of a panic.
            let Some((_, _, item)) = self.core.queue.pop() else {
                break;
            };
            self.core.stats.events += 1;
            self.dispatch(item);
        }
        self.core.now
    }

    /// Run for `ticks` ticks past the current time.
    pub fn run_for(&mut self, ticks: u64) -> SimTime {
        let t = self.core.now + ticks;
        self.run_until(t)
    }

    fn dispatch(&mut self, item: Item<P::Msg>) {
        match item {
            Item::Deliver {
                from,
                to,
                msg,
                link_epoch,
            } => {
                let live = self.core.world.linked(from, to)
                    && self.core.links.current_epoch(from, to) == link_epoch
                    && !self.core.world.is_crashed(to);
                if !live {
                    self.core.stats.dropped_in_flight += 1;
                    return;
                }
                self.core.stats.messages_delivered += 1;
                let seq = self.core.links.next_deliver_seq(from, to);
                self.core.trace.record(
                    self.core.now,
                    TraceKind::Deliver {
                        from,
                        to,
                        kind: P::msg_kind(&msg),
                        seq,
                    },
                );
                self.fire_hooks(|h, view, sink| h.on_deliver(view, from, to, &msg, sink));
                self.deliver_proto(to, Event::Message { from, msg });
            }
            Item::Proto { node, ev } => self.deliver_proto(node, ev),
            Item::Command(cmd) => self.execute(cmd),
            Item::ShimData {
                from,
                to,
                msg,
                link_epoch,
                seq,
                ack,
            } => self.shim_data(from, to, msg, link_epoch, seq, ack),
            Item::ShimAck {
                from,
                to,
                link_epoch,
                ack,
            } => {
                let live = self.core.world.linked(from, to)
                    && self.core.links.current_epoch(from, to) == link_epoch
                    && !self.core.world.is_crashed(to);
                if !live {
                    self.core.stats.dropped_in_flight += 1;
                    return;
                }
                // `from` acknowledges data `to` sent on the reverse
                // channel; the receiver of this frame owns that sender
                // slot.
                self.shim_apply_ack(to, from, link_epoch, ack);
            }
            Item::ShimRto {
                from,
                to,
                epoch,
                gen,
            } => self.shim_rto(from, to, epoch, gen),
            Item::ShimAckIdle {
                from,
                to,
                epoch,
                gen,
            } => self.shim_ack_idle(from, to, epoch, gen),
            Item::ChannelTick { gen } => self.channel_tick(gen),
            Item::MoveStep { node, epoch } => self.move_step(node, epoch),
            Item::MotionDone { node, epoch } => {
                if self.core.world.is_crashed(node) {
                    return;
                }
                let live = self
                    .core
                    .world
                    .motion(node)
                    .is_some_and(|m| m.epoch == epoch);
                if !live {
                    return;
                }
                self.core.world.end_motion(node);
                self.core
                    .trace
                    .record(self.core.now, TraceKind::MoveEnd(node));
                self.fire_hooks(|h, view, sink| h.on_move(view, node, false, sink));
                self.deliver_proto(node, Event::MovementEnded);
            }
        }
    }

    fn execute(&mut self, cmd: Command) {
        match cmd {
            Command::SetHungry(node) => {
                if !self.core.world.is_crashed(node)
                    && self.core.dining[node.index()] == DiningState::Thinking
                {
                    self.deliver_proto(node, Event::Hungry);
                }
            }
            Command::ExitCs { node, session } => {
                if !self.core.world.is_crashed(node)
                    && self.core.dining[node.index()] == DiningState::Eating
                    && self.core.eating_session[node.index()] == session
                {
                    self.deliver_proto(node, Event::ExitCs);
                }
            }
            Command::Crash(node) => {
                if !self.core.world.is_crashed(node) {
                    self.core.world.crash(node);
                    self.core
                        .trace
                        .record(self.core.now, TraceKind::Crash(node));
                    self.fire_hooks(|h, view, sink| h.on_crash(view, node, sink));
                }
            }
            Command::Recover(node) => {
                if !self.core.world.is_crashed(node) {
                    return;
                }
                self.core.world.recover(node);
                self.core.stats.faults.recoveries += 1;
                self.core
                    .trace
                    .record(self.core.now, TraceKind::Recover(node));
                // Fresh incarnation: the crashed automaton's state is gone
                // for good; the rejoin handshake below re-establishes all
                // shared state through the ordinary link layer.
                let n = self.core.world.len();
                self.protocols[node.index()] = (self.factory)(NodeSeed {
                    id: node,
                    neighbors: Vec::new(),
                    n_nodes: n,
                    max_degree: self.max_degree,
                });
                // Re-sync the cached dining state silently: crash→rejoin
                // is an incarnation change, not a dining transition, so no
                // StateChange fires and `eating_session` stays monotonic
                // (the safety monitor's session bookkeeping depends on
                // both).
                self.core.dining[node.index()] = self.protocols[node.index()].dining_state();
                self.fire_hooks(|h, view, sink| h.on_recover(view, node, sink));
                // Rejoin handshake: flap every incident link so both ends
                // start a fresh incarnation — in-flight traffic and stale
                // ARQ/FIFO state die with the old epoch, and the surviving
                // peer (static side) re-mints shared fork state exactly as
                // after mobility.
                let peers = self.core.world.neighbors(node).to_vec();
                for peer in peers {
                    self.emit_link_changes(vec![
                        LinkChange::Down(node, peer),
                        LinkChange::Up(peer, node),
                    ]);
                }
            }
            Command::StartMove { node, dest, speed } => {
                if self.core.world.is_crashed(node) || speed <= 0.0 || speed.is_nan() {
                    return;
                }
                let step_len = speed * self.core.cfg.move_step_ticks as f64;
                let epoch = self.core.world.begin_motion(node, dest, step_len);
                self.core
                    .trace
                    .record(self.core.now, TraceKind::MoveStart(node));
                self.fire_hooks(|h, view, sink| h.on_move(view, node, true, sink));
                self.deliver_proto(node, Event::MovementStarted);
                let at = self.core.now + self.core.cfg.move_step_ticks;
                self.core.push(at, Item::MoveStep { node, epoch });
            }
            Command::Teleport { node, dest } => {
                if self.core.world.is_crashed(node) {
                    return;
                }
                // Treat the jump as an (instantaneous) movement.
                let epoch = self.core.world.begin_motion(node, dest, 0.0);
                self.core
                    .trace
                    .record(self.core.now, TraceKind::MoveStart(node));
                self.fire_hooks(|h, view, sink| h.on_move(view, node, true, sink));
                self.deliver_proto(node, Event::MovementStarted);
                let changes = self.core.world.relocate(node, dest);
                self.emit_link_changes(changes);
                // Ends after the queued link notifications are processed.
                let now = self.core.now;
                self.core.push(now, Item::MotionDone { node, epoch });
            }
            Command::Partition { side } => {
                let changes = self.core.world.apply_cut(&side);
                self.core.stats.faults.partitions += 1;
                self.core
                    .trace
                    .record(self.core.now, TraceKind::Partition(changes.len()));
                self.emit_link_changes(changes);
            }
            Command::Heal => {
                let changes = self.core.world.clear_cut();
                self.core.stats.faults.heals += 1;
                self.core
                    .trace
                    .record(self.core.now, TraceKind::Heal(changes.len()));
                self.emit_link_changes(changes);
            }
        }
    }

    fn move_step(&mut self, node: NodeId, epoch: u64) {
        if self.core.world.is_crashed(node) {
            return;
        }
        let live = self
            .core
            .world
            .motion(node)
            .is_some_and(|m| m.epoch == epoch);
        if !live {
            return;
        }
        let (changes, arrived) = self.core.world.step_motion(node);
        self.emit_link_changes(changes);
        let now = self.core.now;
        if arrived {
            self.core.push(now, Item::MotionDone { node, epoch });
        } else {
            let at = now + self.core.cfg.move_step_ticks;
            self.core.push(at, Item::MoveStep { node, epoch });
        }
    }

    fn emit_link_changes(&mut self, changes: Vec<LinkChange>) {
        for change in changes {
            match change {
                LinkChange::Up(a, b) => {
                    self.core.links.bump_epoch(a, b);
                    // Symmetry breaking biased toward static nodes; ties
                    // between two movers broken by ID (smaller = static).
                    let a_moving = self.core.world.is_moving(a);
                    let b_moving = self.core.world.is_moving(b);
                    let static_side = match (a_moving, b_moving) {
                        (false, _) => a,
                        (true, false) => b,
                        (true, true) => {
                            if a.0 < b.0 {
                                a
                            } else {
                                b
                            }
                        }
                    };
                    let moving_side = if static_side == a { b } else { a };
                    self.core
                        .trace
                        .record(self.core.now, TraceKind::LinkUp(static_side, moving_side));
                    self.fire_hooks(|h, view, sink| {
                        h.on_link_up(view, static_side, moving_side, sink)
                    });
                    let now = self.core.now;
                    self.core.push(
                        now,
                        Item::Proto {
                            node: static_side,
                            ev: Event::LinkUp {
                                peer: moving_side,
                                kind: LinkUpKind::AsStatic,
                            },
                        },
                    );
                    self.core.push(
                        now,
                        Item::Proto {
                            node: moving_side,
                            ev: Event::LinkUp {
                                peer: static_side,
                                kind: LinkUpKind::AsMoving,
                            },
                        },
                    );
                }
                LinkChange::Down(a, b) => {
                    // Kill the incarnation at once: in-flight messages of
                    // the dead link can never be delivered, and the FIFO
                    // floors of both directions become stale immediately
                    // (a reconnect must not inherit them).
                    self.core.links.bump_epoch(a, b);
                    self.core
                        .trace
                        .record(self.core.now, TraceKind::LinkDown(a, b));
                    self.fire_hooks(|h, view, sink| h.on_link_down(view, a, b, sink));
                    let now = self.core.now;
                    self.core.push(
                        now,
                        Item::Proto {
                            node: a,
                            ev: Event::LinkDown { peer: b },
                        },
                    );
                    self.core.push(
                        now,
                        Item::Proto {
                            node: b,
                            ev: Event::LinkDown { peer: a },
                        },
                    );
                }
            }
        }
    }

    fn deliver_proto(&mut self, node: NodeId, ev: Event<P::Msg>) {
        if self.core.world.is_crashed(node) {
            return;
        }
        let old = self.core.dining[node.index()];
        let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut timers: Vec<(u64, u64)> = Vec::new();
        {
            let mut ctx = Context {
                me: node,
                now: self.core.now,
                neighbors: self.core.world.neighbors(node),
                moving: self.core.world.is_moving(node),
                outbox: &mut outbox,
                timers: &mut timers,
            };
            self.protocols[node.index()].on_event(ev, &mut ctx);
        }
        for (to, msg) in outbox {
            self.send(node, to, msg);
        }
        for (delay, token) in timers {
            let at = self.core.now + delay;
            self.core.push(
                at,
                Item::Proto {
                    node,
                    ev: Event::Timer { token },
                },
            );
        }
        let new = self.protocols[node.index()].dining_state();
        if new != old {
            self.core.dining[node.index()] = new;
            if new == DiningState::Eating {
                self.core.eating_session[node.index()] += 1;
            }
            self.core
                .trace
                .record(self.core.now, TraceKind::StateChange(node, old, new));
            self.fire_hooks(|h, view, sink| h.on_state_change(view, node, old, new, sink));
        }
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        if !self.core.world.linked(from, to) {
            // The neighbor departed during this very handler; the message
            // would have been lost with the link anyway.
            self.core.stats.dropped_at_send += 1;
            return;
        }
        self.core.stats.messages_sent += 1;
        if self.core.shim.is_some() {
            self.shim_send(from, to, msg);
        } else {
            self.physical_send(from, to, Wire::Plain(msg));
        }
    }

    /// Shim-mode send: assign the next sequence number on the channel's
    /// current incarnation, buffer the payload for retransmission, arm the
    /// retransmission timer if idle, and put a data frame (with a
    /// piggybacked cumulative ack for the reverse channel) on the wire.
    fn shim_send(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let epoch = self.core.links.current_epoch(from, to);
        let shim = self.core.shim.as_mut().expect("shim_send without shim");
        let window = shim.window;
        let slot = shim.send_slot(from, to, epoch);
        if slot.buf.len() >= window {
            self.core
                .abort
                .get_or_insert(RunAbort::ShimBufferOverflow { from, to, window });
            return;
        }
        let seq = slot.next_seq();
        slot.buf.push_back(msg.clone());
        let depth = slot.buf.len() as u64;
        let arm = if slot.rto_armed {
            None
        } else {
            slot.rto_gen += 1;
            slot.rto_armed = true;
            Some((slot.rto_gen, slot.attempts))
        };
        let hw = &mut self.core.stats.shim.buffer_high_water;
        *hw = (*hw).max(depth);
        if let Some((gen, attempts)) = arm {
            let delay = self.core.shim.as_mut().expect("shim").backoff(attempts);
            let at = self.core.now + delay;
            self.core.push(
                at,
                Item::ShimRto {
                    from,
                    to,
                    epoch,
                    gen,
                },
            );
        }
        let ack = self
            .core
            .shim
            .as_mut()
            .expect("shim")
            .take_piggyback_ack(from, to, epoch);
        self.physical_send(from, to, Wire::Data { seq, ack, msg });
    }

    /// Apply a cumulative acknowledgment (piggybacked or standalone) to
    /// the sender-side slot `owner` keeps for its data channel to `peer`:
    /// release acknowledged frames, reset the backoff on progress, and
    /// re-arm or disarm the retransmission timer.
    fn shim_apply_ack(&mut self, owner: NodeId, peer: NodeId, epoch: u64, ack: u64) {
        let shim = self
            .core
            .shim
            .as_mut()
            .expect("shim_apply_ack without shim");
        let slot = shim.send_slot(owner, peer, epoch);
        let mut progress = false;
        while slot.base <= ack && !slot.buf.is_empty() {
            slot.buf.pop_front();
            slot.base += 1;
            progress = true;
        }
        if !progress {
            return;
        }
        slot.attempts = 0;
        if slot.buf.is_empty() {
            slot.rto_armed = false;
            return;
        }
        // Outstanding frames remain: restart the timer from the initial
        // timeout (the channel just proved it is making progress).
        slot.rto_gen += 1;
        slot.rto_armed = true;
        let gen = slot.rto_gen;
        let delay = self.core.shim.as_mut().expect("shim").backoff(0);
        let at = self.core.now + delay;
        self.core.push(
            at,
            Item::ShimRto {
                from: owner,
                to: peer,
                epoch,
                gen,
            },
        );
    }

    /// A sequenced data frame arrived: process its piggybacked ack, then
    /// deliver the payload iff it is the next in-order frame — duplicates
    /// and reordered frames update ack state but never reach the
    /// protocol, which is exactly the reliable-FIFO contract the paper
    /// assumes.
    fn shim_data(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: P::Msg,
        link_epoch: u64,
        seq: u64,
        ack: u64,
    ) {
        let live = self.core.world.linked(from, to)
            && self.core.links.current_epoch(from, to) == link_epoch
            && !self.core.world.is_crashed(to);
        if !live {
            self.core.stats.dropped_in_flight += 1;
            return;
        }
        self.shim_apply_ack(to, from, link_epoch, ack);
        let shim = self.core.shim.as_mut().expect("shim_data without shim");
        let ack_idle = shim.ack_idle;
        let slot = shim.recv_slot(from, to, link_epoch);
        // Every data arrival creates ack debt; the idle timer guarantees
        // it is paid even on one-way traffic.
        slot.ack_owed = true;
        let deliver = seq == slot.next;
        if deliver {
            slot.next += 1;
        }
        let arm = if slot.ack_armed {
            None
        } else {
            slot.ack_gen += 1;
            slot.ack_armed = true;
            Some(slot.ack_gen)
        };
        if let Some(gen) = arm {
            let at = self.core.now + ack_idle;
            self.core.push(
                at,
                Item::ShimAckIdle {
                    from,
                    to,
                    epoch: link_epoch,
                    gen,
                },
            );
        }
        if !deliver {
            return;
        }
        self.core.stats.messages_delivered += 1;
        let dseq = self.core.links.next_deliver_seq(from, to);
        self.core.trace.record(
            self.core.now,
            TraceKind::Deliver {
                from,
                to,
                kind: P::msg_kind(&msg),
                seq: dseq,
            },
        );
        self.fire_hooks(|h, view, sink| h.on_deliver(view, from, to, &msg, sink));
        self.deliver_proto(to, Event::Message { from, msg });
    }

    /// Retransmission timeout fired: resend every buffered frame of the
    /// channel (go-back-N) and re-arm with exponential backoff — or give
    /// up and discard after `max_retries` consecutive silent timeouts.
    /// Giving up matters: a crashed peer keeps its links up (crashes are
    /// silent), so without it every crash would retransmit forever and
    /// livelock into the event budget.
    fn shim_rto(&mut self, from: NodeId, to: NodeId, epoch: u64, gen: u64) {
        if self.core.world.is_crashed(from) || self.core.links.current_epoch(from, to) != epoch {
            return;
        }
        let shim = self.core.shim.as_mut().expect("shim_rto without shim");
        let max_retries = shim.max_retries;
        let slot = shim.send_slot(from, to, epoch);
        if !slot.rto_armed || slot.rto_gen != gen {
            return;
        }
        slot.rto_armed = false;
        if slot.buf.is_empty() {
            return;
        }
        slot.attempts += 1;
        if slot.attempts > max_retries {
            slot.base += slot.buf.len() as u64;
            slot.buf.clear();
            slot.attempts = 0;
            return;
        }
        let attempts = slot.attempts;
        slot.rto_gen += 1;
        slot.rto_armed = true;
        let gen = slot.rto_gen;
        let base = slot.base;
        let frames: Vec<(u64, P::Msg)> = slot
            .buf
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, m)| (base + i as u64, m))
            .collect();
        self.core.stats.shim.retransmissions += frames.len() as u64;
        let delay = self.core.shim.as_mut().expect("shim").backoff(attempts);
        let at = self.core.now + delay;
        self.core.push(
            at,
            Item::ShimRto {
                from,
                to,
                epoch,
                gen,
            },
        );
        let ack = self
            .core
            .shim
            .as_mut()
            .expect("shim")
            .take_piggyback_ack(from, to, epoch);
        for (seq, msg) in frames {
            self.physical_send(from, to, Wire::Data { seq, ack, msg });
        }
    }

    /// Idle-ack timeout fired for the receiver of the `from → to` data
    /// channel: if an acknowledgment is still owed (no reverse traffic
    /// piggybacked it in time), send a standalone cumulative ack.
    fn shim_ack_idle(&mut self, from: NodeId, to: NodeId, epoch: u64, gen: u64) {
        if self.core.world.is_crashed(to) || self.core.links.current_epoch(from, to) != epoch {
            return;
        }
        let shim = self.core.shim.as_mut().expect("shim_ack_idle without shim");
        let slot = shim.recv_slot(from, to, epoch);
        if !slot.ack_armed || slot.ack_gen != gen {
            return;
        }
        slot.ack_armed = false;
        if !slot.ack_owed {
            return;
        }
        slot.ack_owed = false;
        let ack = slot.next - 1;
        self.core.stats.shim.acks_sent += 1;
        self.physical_send(to, from, Wire::Ack { ack });
    }

    /// Put one physical frame on the `from → to` channel: delay choice
    /// (strategy or seeded draw), fault adversary, incarnation-scoped FIFO
    /// clamp, optional duplicate ghost. With the shim disabled every frame
    /// is a bare protocol message and this is, bit for bit, the historical
    /// send path.
    fn physical_send(&mut self, from: NodeId, to: NodeId, wire: Wire<P::Msg>) {
        let kind = match &wire {
            Wire::Plain(m) | Wire::Data { msg: m, .. } => P::msg_kind(m),
            Wire::Ack { .. } => "ack",
        };
        let earliest = self.core.cfg.min_message_delay;
        let latest = self.core.cfg.max_message_delay;
        // Strategy path: hand the legal window (and what the delivery can
        // be ordered against) to the injected policy. The default path is
        // untouched so strategy-less runs stay bit-for-bit identical to
        // every pre-existing experiment. The choice is assembled first
        // (immutable borrows only) so the policy can then be borrowed
        // mutably.
        let choice = self.core.sched.is_some().then(|| {
            let deadline = self.core.now + latest;
            let (mut pending_in_window, mut pending_dependent_in_window) = (0usize, 0usize);
            for (at, _, item) in self.core.queue.iter() {
                if at > deadline {
                    continue;
                }
                pending_in_window += 1;
                if item_node(item).is_none_or(|n| n == to) {
                    pending_dependent_in_window += 1;
                }
            }
            let digest = match self
                .core
                .sched
                .as_ref()
                .map_or(sched::DigestMode::Off, |s| s.digest_mode())
            {
                sched::DigestMode::Off => None,
                sched::DigestMode::Absolute => self.state_digest(),
                sched::DigestMode::Progress => self.progress_digest(),
            };
            DeliveryChoice {
                from,
                to,
                kind,
                now: self.core.now,
                earliest,
                latest,
                pending_in_window,
                pending_dependent_in_window,
                fifo_floor: self.core.links.fifo_floor(from, to),
                digest,
            }
        });
        let delay = match (&choice, self.core.sched.as_mut()) {
            (Some(choice), Some(strategy)) => {
                let picked = strategy.choose_delay(choice);
                if picked < earliest || picked > latest {
                    // A malformed imported schedule or buggy policy. The
                    // old silent clamp reordered the replay while claiming
                    // conformance; now the run aborts at the next loop
                    // iteration. The clamped value still schedules the
                    // delivery so the aborted engine's state stays
                    // coherent for inspection.
                    self.core.abort.get_or_insert(RunAbort::DelayOutOfWindow {
                        channel: "strategy",
                        from,
                        to,
                        delay: picked,
                        earliest,
                        latest,
                    });
                }
                picked.clamp(earliest, latest)
            }
            // No strategy: the configured channel model maps the frame to
            // a delay (or a loss). `Iid` is the historical draw, verbatim
            // and at the same stream position, so default runs stay
            // bit-for-bit identical to every pre-existing experiment.
            _ => match self.core.cfg.channel.clone() {
                ChannelConfig::Iid => self.core.rng.gen_range(earliest..=latest),
                ChannelConfig::GilbertElliott { .. } => {
                    // Delay stays the i.i.d. draw from the main stream (at
                    // the exact position Iid uses); the chain itself steps
                    // on the dedicated channel stream, so an all-good
                    // chain leaves traces unchanged.
                    let drawn = self.core.rng.gen_range(earliest..=latest);
                    let epoch = self.core.links.current_epoch(from, to);
                    let (flipped, lost) = self
                        .core
                        .channel
                        .as_mut()
                        .map_or((false, false), |ch| ch.ge_step(from, to, epoch));
                    self.core.stats.channel.burst_transitions += flipped as u64;
                    if lost {
                        self.core.stats.channel.frames_lost += 1;
                        self.core
                            .trace
                            .record(self.core.now, TraceKind::ChannelLoss(from, to));
                        return;
                    }
                    drawn
                }
                ChannelConfig::ConstantBandwidth {
                    ticks_per_frame,
                    max_queue,
                } => {
                    if ticks_per_frame < earliest || ticks_per_frame > latest {
                        // Misconfigured model: the serialization time does
                        // not fit the legal window. Abort (no silent
                        // clamp-and-carry-on) but still schedule the
                        // clamped frame so the stopped engine stays
                        // coherent for inspection — same contract as the
                        // strategy path above.
                        self.core.abort.get_or_insert(RunAbort::DelayOutOfWindow {
                            channel: "constant-bandwidth",
                            from,
                            to,
                            delay: ticks_per_frame,
                            earliest,
                            latest,
                        });
                    }
                    let frame = ticks_per_frame.clamp(earliest, latest);
                    let now = self.core.now;
                    let epoch = self.core.links.current_epoch(from, to);
                    let slot = self
                        .core
                        .channel
                        .as_mut()
                        .expect("channel state exists for non-iid models")
                        .cb_slot(from, to, epoch);
                    // Frames whose scheduled completion has passed have
                    // left the link.
                    while slot.inflight.front().is_some_and(|&t| t <= now) {
                        slot.inflight.pop_front();
                    }
                    if slot.inflight.len() >= max_queue {
                        self.core
                            .abort
                            .get_or_insert(RunAbort::ChannelQueueOverflow {
                                from,
                                to,
                                limit: max_queue,
                            });
                        return;
                    }
                    let start = slot.busy_until.max(now);
                    let done = start + frame;
                    slot.busy_until = done;
                    slot.inflight.push_back(done);
                    let depth = slot.inflight.len() as u64;
                    self.core.stats.channel.frames_queued += (start > now) as u64;
                    let peak = &mut self.core.stats.channel.queue_peak;
                    *peak = (*peak).max(depth);
                    // Queueing delay is emergent: the frame arrives when
                    // the link finishes serializing everything ahead of
                    // it, which may exceed ν under sustained load.
                    done.0 - now.0
                }
                ChannelConfig::SharedMedium {
                    ticks_per_frame,
                    max_inflight,
                } => {
                    self.shared_medium_send(
                        from,
                        to,
                        wire,
                        ticks_per_frame,
                        max_inflight,
                        earliest,
                        latest,
                    );
                    return;
                }
            },
        };
        let now = self.core.now;
        let mut at = now + delay;
        // ── Fault adversary ────────────────────────────────────────────
        // All decisions draw from the dedicated fault RNG, in a fixed
        // order (ν-override, drop, duplicate, skew), so runs replay
        // byte-for-byte and an empty plan perturbs nothing.
        if let Some(da) = &self.core.cfg.fault.max_delay {
            if da.applies(from, to, now) {
                at = now + self.core.cfg.max_message_delay;
                self.core.stats.faults.max_delay_forced += 1;
                self.core.trace.record(now, TraceKind::FaultDelay(from, to));
            }
        }
        let mut duplicate_lag = None;
        if let Some(lf) = &self.core.cfg.fault.link {
            if lf.applies(from, to, now) {
                if self.core.fault_rng.gen_bool(lf.rate(lf.drop, now)) {
                    // Never handed to the network: the ledger counts it
                    // under `faults.msgs_dropped` only.
                    self.core.stats.faults.msgs_dropped += 1;
                    self.core.trace.record(now, TraceKind::FaultDrop(from, to));
                    return;
                }
                if self.core.fault_rng.gen_bool(lf.rate(lf.duplicate, now)) {
                    let lag = lf.dup_lag.unwrap_or(self.core.cfg.max_message_delay);
                    duplicate_lag = Some(lag.max(1));
                }
                if self.core.fault_rng.gen_bool(lf.rate(lf.skew, now)) {
                    at += lf.skew_ticks;
                    self.core.stats.faults.msgs_delayed += 1;
                    self.core.trace.record(now, TraceKind::FaultDelay(from, to));
                }
            }
        }
        // FIFO per directed channel, scoped to the link's current
        // incarnation: a floor recorded before a flap must not delay
        // post-reconnect traffic.
        if let Some(last) = self.core.links.fifo_floor(from, to) {
            if at <= last {
                at = last + 1;
            }
        }
        self.core.links.set_fifo_floor(from, to, at);
        let link_epoch = self.core.links.current_epoch(from, to);
        if let Some(lag) = duplicate_lag {
            // The ghost copy trails the original by `lag` ticks on the
            // same incarnation, and advances the FIFO floor so later
            // traffic still arrives in order relative to it.
            let dup_at = at + lag;
            self.core.links.set_fifo_floor(from, to, dup_at);
            self.core.stats.faults.msgs_duplicated += 1;
            self.core
                .trace
                .record(now, TraceKind::FaultDuplicate(from, to));
            let ghost = wire_item(from, to, link_epoch, wire.clone());
            self.core.push(dup_at, ghost);
        }
        let item = wire_item(from, to, link_epoch, wire);
        self.core.push(at, item);
    }

    /// Shared-medium send path: the frame becomes an in-flight
    /// transmission served at a fair-share rate of the sender's radio
    /// neighborhood; its delivery is scheduled by [`Engine::channel_tick`]
    /// when its remaining work drains. The fault adversary draws in the
    /// same fixed order as the common path (ν-override, drop, duplicate,
    /// skew); delay-shaped faults become extra delivery delay on top of
    /// the emergent service time, and a duplicate becomes a second flight
    /// trailing by the configured lag.
    #[allow(clippy::too_many_arguments)]
    fn shared_medium_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        wire: Wire<P::Msg>,
        ticks_per_frame: u64,
        max_inflight: usize,
        earliest: u64,
        latest: u64,
    ) {
        let now = self.core.now;
        if ticks_per_frame < earliest || ticks_per_frame > latest {
            // Same contract as the constant-bandwidth path: a full-rate
            // transmit time outside the window is a misconfiguration and
            // aborts the run; the clamped frame still flies so the
            // stopped engine stays coherent.
            self.core.abort.get_or_insert(RunAbort::DelayOutOfWindow {
                channel: "shared-medium",
                from,
                to,
                delay: ticks_per_frame,
                earliest,
                latest,
            });
        }
        let mut extra = 0u64;
        if let Some(da) = &self.core.cfg.fault.max_delay {
            if da.applies(from, to, now) {
                extra += self.core.cfg.max_message_delay;
                self.core.stats.faults.max_delay_forced += 1;
                self.core.trace.record(now, TraceKind::FaultDelay(from, to));
            }
        }
        let mut duplicate_lag = None;
        if let Some(lf) = &self.core.cfg.fault.link {
            if lf.applies(from, to, now) {
                if self.core.fault_rng.gen_bool(lf.rate(lf.drop, now)) {
                    self.core.stats.faults.msgs_dropped += 1;
                    self.core.trace.record(now, TraceKind::FaultDrop(from, to));
                    return;
                }
                if self.core.fault_rng.gen_bool(lf.rate(lf.duplicate, now)) {
                    let lag = lf.dup_lag.unwrap_or(self.core.cfg.max_message_delay);
                    duplicate_lag = Some(lag.max(1));
                }
                if self.core.fault_rng.gen_bool(lf.rate(lf.skew, now)) {
                    extra += lf.skew_ticks;
                    self.core.stats.faults.msgs_delayed += 1;
                    self.core.trace.record(now, TraceKind::FaultDelay(from, to));
                }
            }
        }
        let link_epoch = self.core.links.current_epoch(from, to);
        let mut span = self.core.world.neighbors(from).to_vec();
        span.push(from);
        let depth = self
            .core
            .channel
            .as_ref()
            .map_or(0, |ch| ch.sm_audible(&span));
        if depth >= max_inflight {
            self.core
                .abort
                .get_or_insert(RunAbort::ChannelQueueOverflow {
                    from,
                    to,
                    limit: max_inflight,
                });
            return;
        }
        self.core.stats.channel.frames_queued += (depth > 0) as u64;
        let peak = &mut self.core.stats.channel.queue_peak;
        *peak = (*peak).max(depth as u64 + 1);
        let ghost = duplicate_lag.map(|lag| {
            self.core.stats.faults.msgs_duplicated += 1;
            self.core
                .trace
                .record(now, TraceKind::FaultDuplicate(from, to));
            (wire.clone(), lag)
        });
        let remaining = ticks_per_frame.clamp(earliest, latest) as f64;
        if let Some(ch) = self.core.channel.as_mut() {
            ch.sm_enqueue(
                Flight {
                    from,
                    to,
                    link_epoch,
                    wire,
                    remaining,
                    rate: 0.0,
                    extra_delay: extra,
                    span: span.clone(),
                },
                now,
            );
            if let Some((dup_wire, lag)) = ghost {
                ch.sm_enqueue(
                    Flight {
                        from,
                        to,
                        link_epoch,
                        wire: dup_wire,
                        remaining,
                        rate: 0.0,
                        extra_delay: extra + lag,
                        span,
                    },
                    now,
                );
            }
        }
        self.channel_rearm(now);
    }

    /// Arm (or re-arm) the shared-medium completion scan at the earliest
    /// instant any in-flight frame could finish at current rates. Bumping
    /// the generation invalidates every previously armed scan.
    fn channel_rearm(&mut self, now: SimTime) {
        let Some(ch) = self.core.channel.as_mut() else {
            return;
        };
        let Some(at) = ch.sm_eta(now) else {
            return;
        };
        ch.gen += 1;
        let gen = ch.gen;
        self.core.push(at, Item::ChannelTick { gen });
    }

    /// Shared-medium completion scan: drain every frame whose remaining
    /// work has hit zero, schedule its delivery (FIFO-clamped on its link
    /// incarnation; stale incarnations die in flight at dispatch exactly
    /// like queued frames), and re-arm for the next completion.
    fn channel_tick(&mut self, gen: u64) {
        let now = self.core.now;
        let done = {
            let Some(ch) = self.core.channel.as_mut() else {
                return;
            };
            if ch.gen != gen {
                return;
            }
            ch.sm_take_completed(now)
        };
        for flight in done {
            let mut at = now + flight.extra_delay;
            if self.core.links.current_epoch(flight.from, flight.to) == flight.link_epoch {
                if let Some(last) = self.core.links.fifo_floor(flight.from, flight.to) {
                    if at <= last {
                        at = last + 1;
                    }
                }
                self.core.links.set_fifo_floor(flight.from, flight.to, at);
            }
            self.core.push(
                at,
                wire_item(flight.from, flight.to, flight.link_epoch, flight.wire),
            );
        }
        self.channel_rearm(now);
    }

    fn fire_quantum_end(&mut self) {
        self.fire_hooks(|h, view, sink| h.on_quantum_end(view, sink));
    }

    fn fire_hooks<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut dyn Hook<P::Msg>, &View<'_>, &mut Sink),
    {
        if self.hooks.is_empty() {
            return;
        }
        let mut sink = Sink { scheduled: vec![] };
        {
            let view = self.core.view();
            for hook in &mut self.hooks {
                f(hook.as_mut(), &view, &mut sink);
            }
        }
        for (at, cmd) in sink.scheduled {
            // Hooks are an external surface like `Engine::schedule`: a
            // request for an already-passed instant means "now".
            let at = at.max(self.core.now);
            self.core.push(at, Item::Command(cmd));
        }
    }
}

/// The queue item a physical frame becomes, keyed to the link incarnation
/// it was sent on.
fn wire_item<M>(from: NodeId, to: NodeId, link_epoch: u64, wire: Wire<M>) -> Item<M> {
    match wire {
        Wire::Plain(msg) => Item::Deliver {
            from,
            to,
            msg,
            link_epoch,
        },
        Wire::Data { seq, ack, msg } => Item::ShimData {
            from,
            to,
            msg,
            link_epoch,
            seq,
            ack,
        },
        Wire::Ack { ack } => Item::ShimAck {
            from,
            to,
            link_epoch,
            ack,
        },
    }
}

/// The node at which a queued item dispatches, for dependent-delivery
/// counting: two queued items interact only when they dispatch at the same
/// node (the receiving automata share no state otherwise). `None` means the
/// item has global effect (commands may retarget any node, channel ticks
/// reshape every in-flight frame) and must be counted as dependent on
/// everything.
fn item_node<M>(item: &Item<M>) -> Option<NodeId> {
    match item {
        Item::Deliver { to, .. } | Item::ShimData { to, .. } => Some(*to),
        Item::Proto { node, .. } | Item::MoveStep { node, .. } | Item::MotionDone { node, .. } => {
            Some(*node)
        }
        // A standalone ack dispatches at the shim of its receiver `to`; an
        // RTO fires at the sender `from`; the idle-ack timer fires at the
        // receiver of the `from → to` data channel, i.e. `to`.
        Item::ShimAck { to, .. } | Item::ShimAckIdle { to, .. } => Some(*to),
        Item::ShimRto { from, .. } => Some(*from),
        Item::Command(_) | Item::ChannelTick { .. } => None,
    }
}

/// Content fingerprint of one queued item, for [`Engine::state_digest`].
/// Message and event payloads are hashed via their `Debug` rendering
/// (deterministic; `Protocol::Msg: Debug` is already required).
fn item_digest<M: std::fmt::Debug>(item: &Item<M>) -> u64 {
    let mut h = sched::Fnv::new();
    match item {
        Item::Deliver {
            from,
            to,
            msg,
            link_epoch,
        } => {
            h.write_u64(1);
            h.write_u64(from.0 as u64);
            h.write_u64(to.0 as u64);
            h.write_u64(*link_epoch);
            h.write_u64(sched::digest_of_debug(msg));
        }
        Item::Proto { node, ev } => {
            h.write_u64(2);
            h.write_u64(node.0 as u64);
            h.write_u64(sched::digest_of_debug(ev));
        }
        Item::Command(cmd) => {
            h.write_u64(3);
            h.write_u64(sched::digest_of_debug(cmd));
        }
        Item::MoveStep { node, epoch } => {
            h.write_u64(4);
            h.write_u64(node.0 as u64);
            h.write_u64(*epoch);
        }
        Item::MotionDone { node, epoch } => {
            h.write_u64(5);
            h.write_u64(node.0 as u64);
            h.write_u64(*epoch);
        }
        Item::ShimData {
            from,
            to,
            msg,
            link_epoch,
            seq,
            ack,
        } => {
            h.write_u64(6);
            h.write_u64(from.0 as u64);
            h.write_u64(to.0 as u64);
            h.write_u64(*link_epoch);
            h.write_u64(*seq);
            h.write_u64(*ack);
            h.write_u64(sched::digest_of_debug(msg));
        }
        Item::ShimAck {
            from,
            to,
            link_epoch,
            ack,
        } => {
            h.write_u64(7);
            h.write_u64(from.0 as u64);
            h.write_u64(to.0 as u64);
            h.write_u64(*link_epoch);
            h.write_u64(*ack);
        }
        Item::ShimRto {
            from,
            to,
            epoch,
            gen,
        } => {
            h.write_u64(8);
            h.write_u64(from.0 as u64);
            h.write_u64(to.0 as u64);
            h.write_u64(*epoch);
            h.write_u64(*gen);
        }
        Item::ShimAckIdle {
            from,
            to,
            epoch,
            gen,
        } => {
            h.write_u64(9);
            h.write_u64(from.0 as u64);
            h.write_u64(to.0 as u64);
            h.write_u64(*epoch);
            h.write_u64(*gen);
        }
        Item::ChannelTick { gen } => {
            h.write_u64(10);
            h.write_u64(*gen);
        }
    }
    h.finish()
}

/// Seed of the dedicated fault RNG: explicit when the plan names one,
/// otherwise a salt of the run seed (so distinct run seeds explore
/// distinct fault schedules with no extra configuration).
fn fault_seed(cfg: &SimConfig) -> u64 {
    if cfg.fault.seed != 0 {
        cfg.fault.seed
    } else {
        cfg.seed ^ 0xFA01_7001_AD5E_ED00
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo protocol: replies `x+1` to any numeric message; used to test
    /// delivery, FIFO and link semantics.
    struct Echo {
        state: DiningState,
        received: Vec<(NodeId, u64)>,
    }

    impl Protocol for Echo {
        type Msg = u64;
        fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
            match ev {
                Event::Hungry => self.state = DiningState::Eating,
                Event::ExitCs => self.state = DiningState::Thinking,
                Event::Message { from, msg } => {
                    self.received.push((from, msg));
                    if msg < 3 {
                        ctx.send(from, msg + 1);
                    }
                }
                Event::Timer { token } => {
                    // Kick off a ping-pong with the first neighbor.
                    if let Some(&n) = ctx.neighbors().first() {
                        ctx.send(n, token);
                    }
                }
                _ => {}
            }
        }
        fn dining_state(&self) -> DiningState {
            self.state
        }
    }

    fn engine2() -> Engine<Echo> {
        Engine::new(
            SimConfig {
                trace: true,
                ..SimConfig::default()
            },
            vec![(0.0, 0.0), (1.0, 0.0)],
            |_| Echo {
                state: DiningState::Thinking,
                received: vec![],
            },
        )
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut e = engine2();
        // Fire a timer on node 0 that starts a ping-pong 0 -> 1 -> 0 ...
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(1_000));
        // 0 sent 0; 1 replied 1; 0 replied 2; 1 replied 3 (no further reply).
        assert_eq!(
            e.protocol(NodeId(1)).received,
            vec![(NodeId(0), 0), (NodeId(0), 2)]
        );
        assert_eq!(
            e.protocol(NodeId(0)).received,
            vec![(NodeId(1), 1), (NodeId(1), 3)]
        );
        assert_eq!(e.stats().messages_sent, 4);
        assert_eq!(e.stats().messages_delivered, 4);
    }

    #[test]
    fn fifo_order_is_preserved_per_channel() {
        struct Burst {
            got: Vec<u64>,
        }
        impl Protocol for Burst {
            type Msg = u64;
            fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
                match ev {
                    Event::Timer { .. } => {
                        for i in 0..50 {
                            if let Some(&n) = ctx.neighbors().first() {
                                ctx.send(n, i);
                            }
                        }
                    }
                    Event::Message { msg, .. } => self.got.push(msg),
                    _ => {}
                }
            }
            fn dining_state(&self) -> DiningState {
                DiningState::Thinking
            }
        }
        let mut e: Engine<Burst> =
            Engine::new(SimConfig::default(), vec![(0.0, 0.0), (1.0, 0.0)], |_| {
                Burst { got: vec![] }
            });
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(10_000));
        let got = &e.protocol(NodeId(1)).got;
        assert_eq!(got.len(), 50);
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "FIFO violated: {got:?}"
        );
    }

    #[test]
    fn crashed_node_stops_processing() {
        let mut e = engine2();
        e.crash_at(SimTime(1), NodeId(1));
        e.core.push(
            SimTime(2),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 7 },
            },
        );
        e.run_until(SimTime(1_000));
        assert!(e.protocol(NodeId(1)).received.is_empty());
        assert!(e.world().is_crashed(NodeId(1)));
    }

    #[test]
    fn hungry_and_exit_commands_respect_state_and_session() {
        let mut e = engine2();
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(2));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
        // Wrong session: ignored.
        e.schedule(
            SimTime(3),
            Command::ExitCs {
                node: NodeId(0),
                session: 99,
            },
        );
        e.run_until(SimTime(4));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
        // Right session (first eating session = 1).
        e.schedule(
            SimTime(5),
            Command::ExitCs {
                node: NodeId(0),
                session: 1,
            },
        );
        e.run_until(SimTime(6));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Thinking);
    }

    #[test]
    fn teleport_generates_link_events_with_mover_semantics() {
        struct Watcher {
            ups: Vec<(NodeId, LinkUpKind)>,
            downs: Vec<NodeId>,
            move_events: u32,
        }
        impl Protocol for Watcher {
            type Msg = ();
            fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
                match ev {
                    Event::LinkUp { peer, kind } => self.ups.push((peer, kind)),
                    Event::LinkDown { peer } => self.downs.push(peer),
                    Event::MovementStarted | Event::MovementEnded => self.move_events += 1,
                    _ => {}
                }
            }
            fn dining_state(&self) -> DiningState {
                DiningState::Thinking
            }
        }
        // p0 - p1 linked; p2 isolated far away.
        let mut e: Engine<Watcher> = Engine::new(
            SimConfig::default(),
            vec![(0.0, 0.0), (1.0, 0.0), (100.0, 0.0)],
            |_| Watcher {
                ups: vec![],
                downs: vec![],
                move_events: 0,
            },
        );
        // Teleport p1 next to p2: p1 loses p0, gains p2 as the moving side.
        e.teleport_at(SimTime(5), NodeId(1), (99.0, 0.0));
        e.run_until(SimTime(10));
        assert_eq!(e.protocol(NodeId(0)).downs, vec![NodeId(1)]);
        assert_eq!(
            e.protocol(NodeId(1)).ups,
            vec![(NodeId(2), LinkUpKind::AsMoving)]
        );
        assert_eq!(
            e.protocol(NodeId(2)).ups,
            vec![(NodeId(1), LinkUpKind::AsStatic)]
        );
        assert_eq!(e.protocol(NodeId(1)).move_events, 2); // started + ended
        assert!(e.world().linked(NodeId(1), NodeId(2)));
        assert!(!e.world().linked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn messages_in_flight_die_with_their_link() {
        let mut e = engine2();
        // Long delays so the message is in flight when the link breaks.
        e.core.cfg.min_message_delay = 50;
        e.core.cfg.max_message_delay = 60;
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 9 },
            },
        );
        e.teleport_at(SimTime(5), NodeId(1), (50.0, 0.0));
        e.run_until(SimTime(1_000));
        assert!(e.protocol(NodeId(1)).received.is_empty());
        assert_eq!(e.stats().dropped_in_flight, 1);
        assert_eq!(e.stats().dropped_at_send, 0);
        assert_eq!(e.stats().messages_dropped(), 1);
    }

    #[test]
    fn fifo_floor_does_not_survive_a_link_flap() {
        // Regression: `fifo_last` used to persist across link incarnations,
        // so a burst sent before a flap kept clamping (delaying) messages
        // sent after the reconnect. The floor must die with the link.
        struct Burst {
            got: Vec<(u64, SimTime)>,
        }
        impl Protocol for Burst {
            type Msg = u64;
            fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
                match ev {
                    Event::Timer { token } => {
                        // A burst of 40 messages: FIFO serialization pushes
                        // the channel's arrival floor far past `now + ν`.
                        if let Some(&n) = ctx.neighbors().first() {
                            for i in 0..40 {
                                ctx.send(n, token + i);
                            }
                        }
                    }
                    Event::Message { msg, .. } => self.got.push((msg, ctx.time())),
                    _ => {}
                }
            }
            fn dining_state(&self) -> DiningState {
                DiningState::Thinking
            }
        }
        let mut e: Engine<Burst> =
            Engine::new(SimConfig::default(), vec![(0.0, 0.0), (1.0, 0.0)], |_| {
                Burst { got: vec![] }
            });
        // t=1: node 0 sends a 40-message burst; the FIFO floor of channel
        // 0→1 climbs to ≥ 40 ticks.
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        // t=5: node 1 teleports away (link down, most of the burst dies in
        // flight) and immediately back (link up, fresh incarnation).
        e.teleport_at(SimTime(5), NodeId(1), (50.0, 0.0));
        e.teleport_at(SimTime(6), NodeId(1), (1.0, 0.0));
        e.run_until(SimTime(5_000));
        let floor_before_flap = e
            .protocol(NodeId(1))
            .got
            .iter()
            .map(|&(_, at)| at)
            .max()
            .unwrap_or(SimTime::ZERO);
        // t=100: a single post-reconnect message. With the stale floor it
        // would be clamped to ~t=41+; with epoch-scoped FIFO it arrives
        // within ν of its send time.
        let mut e2 = e;
        e2.core.push(
            SimTime(100),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 1_000 },
            },
        );
        e2.run_until(SimTime(5_000));
        let first_post = e2
            .protocol(NodeId(1))
            .got
            .iter()
            .find(|&&(msg, _)| msg >= 1_000)
            .map(|&(_, at)| at)
            .expect("post-reconnect burst delivered");
        assert!(
            first_post >= SimTime(101) && first_post <= SimTime(100 + 10),
            "post-reconnect message clamped by a dead incarnation's FIFO floor: \
             arrived {first_post:?} (pre-flap floor {floor_before_flap:?})"
        );
        // And the flap actually killed in-flight messages, so the scenario
        // exercises what it claims to.
        assert!(e2.stats().dropped_in_flight > 0);
    }

    #[test]
    fn drop_counters_split_send_races_from_in_flight_losses() {
        // Node 0 replies to every message; node 1 departs while a reply is
        // in flight → in-flight loss. A protocol that sends to a neighbor
        // that vanished within the same handler → at-send loss.
        struct Pinger;
        impl Protocol for Pinger {
            type Msg = u64;
            fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
                if let Event::Timer { .. } = ev {
                    // Sent unconditionally: if the link is already gone
                    // this is a send-time drop.
                    ctx.send(NodeId(1), 1);
                }
            }
            fn dining_state(&self) -> DiningState {
                DiningState::Thinking
            }
        }
        let mut e: Engine<Pinger> = Engine::new(
            SimConfig {
                min_message_delay: 50,
                max_message_delay: 60,
                ..SimConfig::default()
            },
            vec![(0.0, 0.0), (1.0, 0.0)],
            |_| Pinger,
        );
        // In flight when the link dies at t=10.
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.teleport_at(SimTime(10), NodeId(1), (50.0, 0.0));
        // Sent after the link is gone: dropped at send.
        e.core.push(
            SimTime(20),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 1 },
            },
        );
        e.run_until(SimTime(1_000));
        let s = e.stats();
        assert_eq!(s.dropped_in_flight, 1, "{s:?}");
        assert_eq!(s.dropped_at_send, 1, "{s:?}");
        assert_eq!(s.messages_dropped(), 2);
        // At-send drops never entered the network, so the ledger is
        // sent = delivered + died-in-flight.
        assert_eq!(s.messages_sent, s.messages_delivered + s.dropped_in_flight);
    }

    #[test]
    fn smooth_movement_reaches_destination_and_churns_links() {
        let mut e = engine2();
        e.schedule(
            SimTime(1),
            Command::StartMove {
                node: NodeId(1),
                dest: Position { x: 10.0, y: 0.0 },
                speed: 0.5,
            },
        );
        e.run_until(SimTime(200));
        assert_eq!(e.world().position(NodeId(1)), Position { x: 10.0, y: 0.0 });
        assert!(!e.world().is_moving(NodeId(1)));
        assert!(!e.world().linked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut e = engine2();
            e.core.push(
                SimTime(1),
                Item::Proto {
                    node: NodeId(0),
                    ev: Event::Timer { token: 0 },
                },
            );
            e.run_until(SimTime(500));
            (e.stats().clone(), e.trace().to_vec())
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    /// One-shot sender: on its timer it sends `count` copies of distinct
    /// numbered messages to its first neighbor; never replies.
    struct Sender {
        got: Vec<(u64, SimTime)>,
    }
    impl Protocol for Sender {
        type Msg = u64;
        fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
            match ev {
                Event::Timer { token } => {
                    if let Some(&n) = ctx.neighbors().first() {
                        for i in 0..(token % 1_000) {
                            ctx.send(n, token + i);
                        }
                    }
                }
                Event::Message { msg, .. } => self.got.push((msg, ctx.time())),
                _ => {}
            }
        }
        fn dining_state(&self) -> DiningState {
            DiningState::Thinking
        }
    }

    fn sender_engine(cfg: SimConfig) -> Engine<Sender> {
        Engine::new(cfg, vec![(0.0, 0.0), (1.0, 0.0)], |_| Sender {
            got: vec![],
        })
    }

    #[test]
    fn fault_drops_never_reach_the_network() {
        use crate::fault::{FaultPlan, LinkFaults};
        let mut e = sender_engine(SimConfig {
            fault: FaultPlan {
                link: Some(LinkFaults {
                    drop: 1.0,
                    ..LinkFaults::default()
                }),
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        // token = 100 → 100 messages, all dropped by the adversary.
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 100 },
            },
        );
        e.run_until(SimTime(1_000));
        let s = e.stats();
        assert_eq!(s.messages_sent, 100);
        assert_eq!(s.faults.msgs_dropped, 100);
        assert_eq!(s.messages_delivered, 0);
        assert_eq!(s.dropped_in_flight, 0);
        assert!(e.protocol(NodeId(1)).got.is_empty());
    }

    #[test]
    fn duplicates_arrive_later_same_payload_and_balance_the_ledger() {
        use crate::fault::{FaultPlan, LinkFaults};
        let mut e = sender_engine(SimConfig {
            fault: FaultPlan {
                link: Some(LinkFaults {
                    duplicate: 1.0,
                    dup_lag: Some(25),
                    ..LinkFaults::default()
                }),
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 5 },
            },
        );
        e.run_until(SimTime(1_000));
        let s = e.stats();
        assert_eq!(s.messages_sent, 5);
        assert_eq!(s.faults.msgs_duplicated, 5);
        assert_eq!(s.messages_delivered, 10);
        // sent + duplicated = delivered + fault-dropped + died-in-flight.
        assert_eq!(
            s.messages_sent + s.faults.msgs_duplicated,
            s.messages_delivered + s.faults.msgs_dropped + s.dropped_in_flight
        );
        let got = &e.protocol(NodeId(1)).got;
        // Each payload exactly twice, ghost strictly later.
        for i in 5..10 {
            let times: Vec<SimTime> = got
                .iter()
                .filter(|&&(m, _)| m == i)
                .map(|&(_, at)| at)
                .collect();
            assert_eq!(times.len(), 2, "payload {i} delivered {times:?}");
            assert!(times[0] < times[1], "ghost of {i} not strictly later");
        }
    }

    #[test]
    fn skew_and_max_delay_adversary_stretch_delays() {
        use crate::fault::{DelayAdversary, FaultPlan, LinkFaults};
        // Adaptive adversary alone: every delivery takes exactly ν.
        let mut e = sender_engine(SimConfig {
            fault: FaultPlan {
                max_delay: Some(DelayAdversary {
                    targets: vec![NodeId(1)],
                    window: None,
                }),
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 1 },
            },
        );
        e.run_until(SimTime(1_000));
        assert_eq!(e.stats().faults.max_delay_forced, 1);
        assert_eq!(e.protocol(NodeId(1)).got, vec![(1, SimTime(1 + 10))]);
        // Skew alone: delivery beyond ν of the send instant.
        let mut e = sender_engine(SimConfig {
            fault: FaultPlan {
                link: Some(LinkFaults {
                    skew: 1.0,
                    skew_ticks: 40,
                    ..LinkFaults::default()
                }),
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 1 },
            },
        );
        e.run_until(SimTime(1_000));
        assert_eq!(e.stats().faults.msgs_delayed, 1);
        let (_, at) = e.protocol(NodeId(1)).got[0];
        assert!(at > SimTime(1 + 10), "skew must exceed ν: {at:?}");
    }

    #[test]
    fn fault_runs_replay_byte_for_byte_from_the_same_seed() {
        use crate::fault::{Burst, FaultPlan, LinkFaults};
        let run = |fault_seed: u64| {
            let mut e = sender_engine(SimConfig {
                trace: true,
                fault: FaultPlan {
                    seed: fault_seed,
                    link: Some(LinkFaults {
                        drop: 0.3,
                        duplicate: 0.3,
                        skew: 0.3,
                        skew_ticks: 15,
                        burst: Some(Burst {
                            period: 50,
                            active: 20,
                            factor: 2.0,
                        }),
                        ..LinkFaults::default()
                    }),
                    ..FaultPlan::default()
                },
                ..SimConfig::default()
            });
            for t in 0..20 {
                e.core.push(
                    SimTime(1 + t * 7),
                    Item::Proto {
                        node: NodeId(0),
                        ev: Event::Timer { token: 10 },
                    },
                );
            }
            e.run_until(SimTime(2_000));
            (e.stats().clone(), e.trace().to_vec())
        };
        let (s1, t1) = run(42);
        let (s2, t2) = run(42);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        assert!(s1.faults.total() > 0, "plan injected nothing: {s1:?}");
        // A different fault seed explores a different schedule.
        let (s3, _) = run(43);
        assert_ne!(s1.faults, s3.faults);
    }

    #[test]
    fn empty_plan_with_nonzero_seed_changes_nothing() {
        use crate::fault::FaultPlan;
        let run = |fault_seed: u64| {
            let mut e = sender_engine(SimConfig {
                trace: true,
                fault: FaultPlan {
                    seed: fault_seed,
                    ..FaultPlan::default()
                },
                ..SimConfig::default()
            });
            e.core.push(
                SimTime(1),
                Item::Proto {
                    node: NodeId(0),
                    ev: Event::Timer { token: 30 },
                },
            );
            e.run_until(SimTime(2_000));
            (e.stats().clone(), e.trace().to_vec())
        };
        // The fault RNG is never consulted when the plan is empty, so its
        // seed is irrelevant: the engine's own stream decides everything.
        assert_eq!(run(0), run(12_345));
    }

    #[test]
    fn partition_heal_cycle_behaves_like_fresh_link_incarnations() {
        // Satellite of the fault-injection issue, extending the teleport
        // FIFO regression: a healed partition must not resurrect the dead
        // incarnation's FIFO floors or its in-flight messages.
        use crate::fault::{FaultPlan, PartitionWindow};
        let mut e = sender_engine(SimConfig {
            trace: true,
            fault: FaultPlan {
                partitions: vec![PartitionWindow {
                    at: 5,
                    side: vec![NodeId(1)],
                    heal_after: 30,
                }],
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        // t=1: a 40-message burst pushes the 0→1 FIFO floor past t=40.
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 40 },
            },
        );
        // t=100 (after the t=35 heal): a single probe message.
        e.core.push(
            SimTime(100),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 1_001 },
            },
        );
        e.run_until(SimTime(2_000));
        let s = e.stats();
        assert_eq!(s.faults.partitions, 1);
        assert_eq!(s.faults.heals, 1);
        assert!(
            s.dropped_in_flight > 0,
            "the cut must kill the in-flight burst: {s:?}"
        );
        let probe_at = e
            .protocol(NodeId(1))
            .got
            .iter()
            .find(|&&(m, _)| m >= 1_000)
            .map(|&(_, at)| at)
            .expect("post-heal message delivered");
        assert!(
            probe_at > SimTime(100) && probe_at <= SimTime(110),
            "post-heal message clamped by a dead incarnation's FIFO floor: {probe_at:?}"
        );
        // The healed link is a fresh incarnation: LinkUp with the
        // partitioned side (node 1) as the moving side.
        assert!(e
            .trace()
            .iter()
            .any(|t| t.kind == TraceKind::LinkUp(NodeId(0), NodeId(1)) && t.at == SimTime(35)));
        assert!(e
            .trace()
            .iter()
            .any(|t| t.kind == TraceKind::LinkDown(NodeId(0), NodeId(1)) && t.at == SimTime(5)));
    }

    #[test]
    fn crash_waves_fire_on_schedule() {
        use crate::fault::{CrashWave, FaultPlan};
        let mut e: Engine<Echo> = Engine::new(
            SimConfig {
                fault: FaultPlan {
                    crash_waves: vec![CrashWave {
                        at: 50,
                        nodes: vec![NodeId(0), NodeId(1)],
                    }],
                    ..FaultPlan::default()
                },
                ..SimConfig::default()
            },
            vec![(0.0, 0.0), (1.0, 0.0)],
            |_| Echo {
                state: DiningState::Thinking,
                received: vec![],
            },
        );
        e.run_until(SimTime(40));
        assert!(!e.world().is_crashed(NodeId(0)));
        e.run_until(SimTime(60));
        assert!(e.world().is_crashed(NodeId(0)));
        assert!(e.world().is_crashed(NodeId(1)));
        assert_eq!(e.stats().faults.crashes_injected, 2);
    }

    #[test]
    fn strategy_picks_delays_and_deliver_traces_carry_kind_and_seq() {
        struct AlwaysLatest;
        impl Strategy for AlwaysLatest {
            fn choose_delay(&mut self, c: &DeliveryChoice) -> u64 {
                c.latest
            }
        }
        let mut e = engine2();
        e.set_strategy(Box::new(AlwaysLatest));
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(1_000));
        assert_eq!(e.pending_events(), 0, "run must reach quiescence");
        let delivers: Vec<(SimTime, NodeId, u64)> = e
            .trace()
            .iter()
            .filter_map(|t| match t.kind {
                TraceKind::Deliver {
                    from, kind, seq, ..
                } => {
                    assert_eq!(kind, "msg", "Echo uses the default label");
                    Some((t.at, from, seq))
                }
                _ => None,
            })
            .collect();
        // Ping-pong of 4 messages, each delivered exactly ν after its send:
        // t = 11, 21, 31, 41.
        assert_eq!(
            delivers.iter().map(|&(at, _, _)| at).collect::<Vec<_>>(),
            vec![SimTime(11), SimTime(21), SimTime(31), SimTime(41)]
        );
        // Per-directed-channel numbering: each channel carries 2 messages.
        assert_eq!(
            delivers
                .iter()
                .map(|&(_, from, seq)| (from, seq))
                .collect::<Vec<_>>(),
            vec![
                (NodeId(0), 1),
                (NodeId(1), 1),
                (NodeId(0), 2),
                (NodeId(1), 2)
            ]
        );
    }

    #[test]
    fn random_delay_strategy_replays_from_its_seed() {
        let run = |seed: u64| {
            let mut e = engine2();
            e.set_strategy(Box::new(crate::sched::RandomDelays::new(seed)));
            e.core.push(
                SimTime(1),
                Item::Proto {
                    node: NodeId(0),
                    ev: Event::Timer { token: 0 },
                },
            );
            e.run_until(SimTime(1_000));
            (e.stats().clone(), e.trace().to_vec())
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn malformed_replay_schedule_is_rejected_not_reordered() {
        // Regression: a delay below the legal window used to be clamped
        // silently, so a corrupt imported schedule replayed as a *different*
        // run that still claimed conformance. It must abort instead.
        let mut s = crate::sched::ImportedSchedule::new(5);
        s.push(NodeId(0), NodeId(1), 0); // below min_message_delay = 1
        let mut e = engine2();
        e.set_strategy(Box::new(s));
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        let reached = e.run_until(SimTime(1_000));
        assert_eq!(
            e.abort(),
            Some(&RunAbort::DelayOutOfWindow {
                channel: "strategy",
                from: NodeId(0),
                to: NodeId(1),
                delay: 0,
                earliest: 1,
                latest: 10,
            })
        );
        assert!(reached < SimTime(1_000), "run must stop early");
        // The abort is sticky: nothing further dispatches.
        let events = e.stats().events;
        e.run_until(SimTime(2_000));
        assert_eq!(e.stats().events, events);
        // And a delay above ν is rejected the same way.
        let mut s = crate::sched::ImportedSchedule::new(5);
        s.push(NodeId(0), NodeId(1), 99);
        let mut e = engine2();
        e.set_strategy(Box::new(s));
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(1_000));
        assert!(matches!(
            e.abort(),
            Some(&RunAbort::DelayOutOfWindow { delay: 99, .. })
        ));
        // In-window schedules still run to quiescence with no abort.
        let mut s = crate::sched::ImportedSchedule::new(5);
        s.push(NodeId(0), NodeId(1), 3);
        let mut e = engine2();
        e.set_strategy(Box::new(s));
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(1_000));
        assert_eq!(e.abort(), None);
        assert_eq!(e.pending_events(), 0);
    }

    #[test]
    fn event_budget_overrun_aborts_instead_of_panicking() {
        // Echo ping-pong is finite, so drive an infinite timer loop.
        struct Ticker;
        impl Protocol for Ticker {
            type Msg = ();
            fn on_event(&mut self, ev: Event<()>, ctx: &mut Context<'_, ()>) {
                if let Event::Timer { token } = ev {
                    ctx.set_timer(1, token);
                }
            }
            fn dining_state(&self) -> DiningState {
                DiningState::Thinking
            }
        }
        let mut e: Engine<Ticker> = Engine::new(
            SimConfig {
                max_events: 100,
                ..SimConfig::default()
            },
            vec![(0.0, 0.0)],
            |_| Ticker,
        );
        e.core.push(
            SimTime(1),
            Item::Proto {
                node: NodeId(0),
                ev: Event::Timer { token: 0 },
            },
        );
        e.run_until(SimTime(1_000_000));
        assert_eq!(
            e.abort(),
            Some(&RunAbort::EventBudgetExceeded { limit: 100 })
        );
        // Exactly the budget is dispatched — the boundary the old panic
        // enforced — and the engine stays inspectable and inert.
        assert_eq!(e.stats().events, 100);
        e.run_until(SimTime(2_000_000));
        assert_eq!(e.stats().events, 100);
        assert!(e.abort().unwrap().to_string().contains("livelock"));
    }

    #[test]
    fn quantum_end_hook_fires_between_instants() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Q(Rc<RefCell<Vec<SimTime>>>);
        impl Hook<u64> for Q {
            fn on_quantum_end(&mut self, view: &View<'_>, _sink: &mut Sink) {
                self.0.borrow_mut().push(view.time());
            }
        }
        let log = Rc::new(RefCell::new(vec![]));
        let mut e = engine2();
        e.add_hook(Box::new(Q(log.clone())));
        e.set_hungry_at(SimTime(3), NodeId(0));
        e.set_hungry_at(SimTime(7), NodeId(1));
        e.run_until(SimTime(10));
        let log = log.borrow();
        assert!(
            log.contains(&SimTime(3)) && log.contains(&SimTime(7)),
            "{log:?}"
        );
        // Monotone, no duplicates of the same instant in a row beyond re-opens.
        assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }
}
