//! Simulation configuration.

use crate::channel::ChannelConfig;
use crate::fault::FaultPlan;
use crate::shim::ArqConfig;
use crate::time::SimTime;
use crate::wheel::EventQueueKind;
use crate::world::LinkEngine;

/// Configuration of a simulation run.
///
/// The two bounds of the paper's model appear here: `max_message_delay` is ν
/// (total time to prepare, transmit and receive a message) and `max_eating_ticks`
/// is τ (an upper bound on the time any node spends in its critical section).
/// The bounds are *not* visible to protocols — exactly as in the paper, where
/// they exist only for analysis — but the harness uses τ to cap eating
/// durations it schedules and experiments report times in the same ticks.
///
/// ```
/// use manet_sim::SimConfig;
/// let cfg = SimConfig { seed: 7, ..SimConfig::default() };
/// assert!(cfg.min_message_delay <= cfg.max_message_delay);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Seed for the single deterministic RNG driving the run.
    pub seed: u64,
    /// Minimum message delay in ticks (inclusive). Must be ≥ 1.
    pub min_message_delay: u64,
    /// Maximum message delay ν in ticks (inclusive).
    pub max_message_delay: u64,
    /// Maximum eating time τ in ticks. The engine enforces this only for
    /// eating sessions scheduled through the harness; protocols never see it.
    pub max_eating_ticks: u64,
    /// Radio range of the unit-disk connectivity model: two nodes are linked
    /// iff their Euclidean distance is ≤ this value.
    pub radio_range: f64,
    /// Interval, in ticks, between position updates of a smoothly moving
    /// node. Link changes are detected at each step.
    pub move_step_ticks: u64,
    /// Hard cap on processed events. Guards against accidental livelock in
    /// tests and experiments: reaching it stops the run and surfaces a
    /// structured [`crate::RunAbort`] through `Engine::abort` (it does not
    /// panic).
    pub max_events: u64,
    /// Record a trace of engine-level events (delivery, link changes,
    /// state transitions) for debugging and scenario assertions.
    pub trace: bool,
    /// The fault-injection adversary schedule (empty by default: no
    /// faults, and no perturbation of the engine's random stream).
    pub fault: FaultPlan,
    /// Per-link reliable-delivery (ARQ) shim between every protocol and
    /// its channel. `None` (the default) disables the shim entirely and
    /// keeps the engine bit-for-bit identical to a build without it; see
    /// [`ArqConfig`].
    pub arq: Option<ArqConfig>,
    /// Which channel model maps each physical send to a delivery time (or
    /// a loss). The default, [`ChannelConfig::Iid`], is the paper's model
    /// and keeps the engine bit-for-bit identical to a build without the
    /// channel subsystem; see [`crate::channel`]'s module docs for the
    /// bandwidth, shared-medium and burst-loss alternatives.
    pub channel: ChannelConfig,
    /// Which link-derivation engine geometric worlds use. The default is
    /// the spatial-grid fast path ([`LinkEngine::Grid`]) unless the crate
    /// is built with the `reference` feature, which restores the pairwise
    /// O(n²) scan. Both paths are bit-for-bit equivalent (pinned by the
    /// differential suite); this knob exists so one binary can compare
    /// them.
    pub link_engine: LinkEngine,
    /// Which event-queue core the engine dispatches from. The default is
    /// the bounded-horizon timing wheel ([`EventQueueKind::Wheel`]) unless
    /// the crate is built with the `reference` feature, which restores the
    /// binary heap. Both cores are bit-for-bit equivalent (pinned by the
    /// `queue_equivalence` differential suite); this knob exists so one
    /// binary can compare them.
    pub event_queue: EventQueueKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xA77D_2008,
            min_message_delay: 1,
            max_message_delay: 10,
            max_eating_ticks: 50,
            radio_range: 1.5,
            move_step_ticks: 2,
            max_events: 200_000_000,
            trace: false,
            fault: FaultPlan::default(),
            arq: None,
            channel: ChannelConfig::default(),
            link_engine: LinkEngine::default(),
            event_queue: EventQueueKind::default(),
        }
    }
}

impl SimConfig {
    /// Validate the invariants of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_message_delay == 0 {
            return Err("min_message_delay must be ≥ 1 (messages are never instantaneous)".into());
        }
        if self.min_message_delay > self.max_message_delay {
            return Err(format!(
                "min_message_delay ({}) exceeds max_message_delay ({})",
                self.min_message_delay, self.max_message_delay
            ));
        }
        if self.max_eating_ticks == 0 {
            return Err("max_eating_ticks (τ) must be ≥ 1".into());
        }
        if self.radio_range <= 0.0 || self.radio_range.is_nan() {
            return Err("radio_range must be positive".into());
        }
        if self.move_step_ticks == 0 {
            return Err("move_step_ticks must be ≥ 1".into());
        }
        // Node-count-dependent fault checks re-run in the engine, which
        // knows the real `n`; here only the size-independent invariants.
        self.fault.validate(usize::MAX)?;
        if let Some(arq) = &self.arq {
            arq.validate()?;
        }
        self.channel.validate()?;
        Ok(())
    }

    /// The paper's ν: maximum message delay in ticks.
    pub fn nu(&self) -> u64 {
        self.max_message_delay
    }

    /// The paper's τ: maximum eating time in ticks.
    pub fn tau(&self) -> u64 {
        self.max_eating_ticks
    }

    /// A convenient horizon long enough for `rounds` sequential
    /// request–respond exchanges plus eating times. Used by tests.
    pub fn horizon(&self, rounds: u64) -> SimTime {
        SimTime(rounds.saturating_mul(self.max_message_delay + self.max_eating_ticks + 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_min_delay() {
        let cfg = SimConfig {
            min_message_delay: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_inverted_delays() {
        let cfg = SimConfig {
            min_message_delay: 20,
            max_message_delay: 10,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_geometry() {
        let cfg = SimConfig {
            radio_range: 0.0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            move_step_ticks: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_invalid_fault_plan() {
        let cfg = SimConfig {
            fault: crate::fault::FaultPlan {
                link: Some(crate::fault::LinkFaults {
                    drop: -0.5,
                    ..crate::fault::LinkFaults::default()
                }),
                ..crate::fault::FaultPlan::default()
            },
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_invalid_channel() {
        let cfg = SimConfig {
            channel: ChannelConfig::ConstantBandwidth {
                ticks_per_frame: 0,
                max_queue: 8,
            },
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn nu_tau_accessors() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.nu(), cfg.max_message_delay);
        assert_eq!(cfg.tau(), cfg.max_eating_ticks);
        assert!(cfg.horizon(10) > SimTime::ZERO);
    }
}
