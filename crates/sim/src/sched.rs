//! Injectable schedule strategies.
//!
//! The engine's *only* source of nondeterminism is the per-message delivery
//! delay: any arrival in `[send + min_delay, send + ν]` is legal under the
//! paper's timing model, and because events are totally ordered by
//! `(time, sequence)`, choosing the delays *is* choosing the interleaving.
//! By default the engine draws each delay uniformly from its seeded RNG;
//! installing a [`Strategy`] (see `Engine::set_strategy`) replaces that draw
//! with an arbitrary policy — a random walk, an exhaustive enumerator, a
//! priority-based adversary — without touching the engine's semantics. Runs
//! without a strategy are bit-for-bit identical to runs before this module
//! existed.

use crate::ids::NodeId;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Everything a [`Strategy`] may consult when picking the delivery delay of
/// one message. All fields are snapshots taken at send time.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryChoice {
    /// The sender.
    pub from: NodeId,
    /// The destination.
    pub to: NodeId,
    /// Coarse label of the message (see `Protocol::msg_kind`).
    pub kind: &'static str,
    /// The send instant.
    pub now: SimTime,
    /// Smallest legal delay (`SimConfig::min_message_delay`).
    pub earliest: u64,
    /// Largest legal delay (the paper's ν, `SimConfig::max_message_delay`).
    pub latest: u64,
    /// Number of already-queued events that dispatch at or before
    /// `now + latest` — the events this delivery can be ordered against.
    pub pending_in_window: usize,
    /// Subset of [`DeliveryChoice::pending_in_window`] that dispatches *at
    /// the destination* `to` (global items such as channel ticks count
    /// conservatively). Two deliveries to distinct nodes commute — the
    /// receiving automata share no state — so only this subset can make the
    /// delivery order observable. Partial-order-reducing explorers branch
    /// only when it is non-zero; see DESIGN.md §9.
    pub pending_dependent_in_window: usize,
    /// FIFO floor of the `from → to` channel in its current incarnation
    /// (the delivery will be clamped above it regardless of the choice).
    pub fifo_floor: Option<SimTime>,
    /// Digest of the global engine state, present only when the strategy
    /// asked for one via [`Strategy::digest_mode`] and every protocol
    /// implements the corresponding digest method.
    pub digest: Option<u64>,
}

/// Which engine-state digest a [`Strategy`] wants attached to each
/// [`DeliveryChoice`]. Digests walk every protocol's state on each send, so
/// strategies that don't deduplicate should leave this [`DigestMode::Off`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DigestMode {
    /// No digest (the default).
    #[default]
    Off,
    /// `Engine::state_digest`: protocol states, dining states, eating
    /// sessions, and the pending queue at *absolute* times. Two states with
    /// equal absolute digests evolve identically — the dedup key of
    /// exhaustive explorers.
    Absolute,
    /// `Engine::progress_digest`: protocol *progress* states (monotone
    /// observational counters excluded), dining states, and the pending
    /// queue at times *relative to now*. Equal progress digests at two
    /// instants of one run mean the run has entered a schedulable cycle —
    /// the key for liveness (lasso) detection, where absolute times and
    /// ever-growing counters would make repetition impossible.
    Progress,
}

impl DeliveryChoice {
    /// True when every legal delay yields the same *event ordering*: either
    /// the window is a single point, the FIFO floor clamps every choice to
    /// the same arrival, or no other queued event can dispatch within the
    /// window (commuting deliveries — the delivery is the next relevant
    /// event no matter which delay is picked). Enumerating strategies use
    /// this as a partial-order reduction and skip branching here; see
    /// DESIGN.md §9 for the soundness argument and its caveat.
    pub fn forced(&self) -> bool {
        self.earliest == self.latest
            || self.fifo_floor.is_some_and(|f| f >= self.now + self.latest)
            || self.pending_in_window == 0
    }
}

/// A schedule strategy: called once per accepted send to pick the delivery
/// delay. The returned value must lie within `[earliest, latest]`: an
/// out-of-window value is a malformed schedule, and the engine aborts the
/// run with [`crate::RunAbort::DelayOutOfWindow`] instead of silently
/// clamping (which would reorder the run while claiming conformance).
/// In-window values flow through the unchanged fault-adversary and FIFO
/// machinery.
pub trait Strategy {
    /// Pick the delivery delay for one message.
    fn choose_delay(&mut self, choice: &DeliveryChoice) -> u64;

    /// Which digest (if any) the engine should compute into
    /// [`DeliveryChoice::digest`] for this strategy. Defaults to
    /// [`DigestMode::Off`]: digests walk every protocol's state on each
    /// send, which only deduplicating or lasso-detecting explorers need.
    fn digest_mode(&self) -> DigestMode {
        DigestMode::Off
    }
}

/// Seeded random walk over legal schedules: every delay is drawn uniformly
/// from the full legal window, from a stream independent of the engine's
/// own RNG. Two walks with the same seed replay byte-for-byte.
#[derive(Clone, Debug)]
pub struct RandomDelays {
    rng: SimRng,
}

impl RandomDelays {
    /// Create a walk from `seed`.
    pub fn new(seed: u64) -> RandomDelays {
        RandomDelays {
            rng: SimRng::seed_from_u64(seed ^ 0x5C4E_D01E_4A1C_0001),
        }
    }
}

impl Strategy for RandomDelays {
    fn choose_delay(&mut self, choice: &DeliveryChoice) -> u64 {
        self.rng.gen_range(choice.earliest..=choice.latest)
    }
}

/// A schedule imported from a recorded execution — typically a live run of
/// the thread-per-node runtime, whose observed per-message latencies are
/// quantized to ticks and replayed here for deterministic conformance
/// checking in the simulator.
///
/// Delays are keyed by *directed channel* `(from, to)` and consumed in
/// recording order, mirroring the per-link FIFO delivery of both the
/// engine and real transports. Exact event-order replay of a live run is
/// a fixed point (the messages themselves depend on the interleaving), so
/// an imported schedule reproduces the live run's *timing shape*: once the
/// recorded delays of a channel are exhausted — the simulated run may send
/// more or fewer messages than the live one — the strategy falls back to
/// `fallback`.
///
/// Recorded and fallback delays are returned verbatim: a delay outside the
/// legal `[min_delay, ν]` window means the recording does not conform to
/// the model being replayed against, and the engine rejects the run with
/// [`crate::RunAbort::DelayOutOfWindow`] rather than silently reordering
/// it. Importers quantizing real latencies clamp at conversion time.
#[derive(Clone, Debug, Default)]
pub struct ImportedSchedule {
    per_channel: std::collections::BTreeMap<(NodeId, NodeId), std::collections::VecDeque<u64>>,
    fallback: u64,
    imported: usize,
    consumed: usize,
}

impl ImportedSchedule {
    /// An empty schedule whose every choice is `fallback` ticks.
    pub fn new(fallback: u64) -> ImportedSchedule {
        ImportedSchedule {
            per_channel: std::collections::BTreeMap::new(),
            fallback,
            imported: 0,
            consumed: 0,
        }
    }

    /// Append one recorded delay (in ticks) for the `from → to` channel.
    /// Delays must be pushed in the channel's delivery order.
    pub fn push(&mut self, from: NodeId, to: NodeId, delay: u64) {
        self.per_channel
            .entry((from, to))
            .or_default()
            .push_back(delay);
        self.imported += 1;
    }

    /// Total recorded delays imported.
    pub fn imported(&self) -> usize {
        self.imported
    }

    /// Recorded delays consumed so far (the rest of the run used the
    /// fallback).
    pub fn consumed(&self) -> usize {
        self.consumed
    }
}

impl Strategy for ImportedSchedule {
    fn choose_delay(&mut self, choice: &DeliveryChoice) -> u64 {
        let recorded = self
            .per_channel
            .get_mut(&(choice.from, choice.to))
            .and_then(|q| q.pop_front());
        match recorded {
            Some(d) => {
                self.consumed += 1;
                d
            }
            None => self.fallback,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher, used for schedule-exploration state
/// digests. Not cryptographic; collisions merely weaken dedup pruning.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one word (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// FNV-1a digest of a value's `Debug` rendering — the lazy but fully
/// deterministic way to fingerprint protocol state without a `Hash` bound.
pub fn digest_of_debug<T: std::fmt::Debug + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv::new();
    h.write_bytes(format!("{value:?}").as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice(earliest: u64, latest: u64, pending: usize, floor: Option<u64>) -> DeliveryChoice {
        DeliveryChoice {
            from: NodeId(0),
            to: NodeId(1),
            kind: "msg",
            now: SimTime(100),
            earliest,
            latest,
            pending_in_window: pending,
            pending_dependent_in_window: pending,
            fifo_floor: floor.map(SimTime),
            digest: None,
        }
    }

    #[test]
    fn forced_when_window_degenerate_or_clamped_or_alone() {
        assert!(choice(3, 3, 5, None).forced(), "single-point window");
        assert!(choice(1, 10, 5, Some(110)).forced(), "FIFO floor at ν");
        assert!(choice(1, 10, 0, None).forced(), "nothing else in window");
        assert!(!choice(1, 10, 5, Some(105)).forced());
        assert!(!choice(1, 10, 1, None).forced());
    }

    #[test]
    fn random_delays_stay_in_window_and_replay() {
        let mut a = RandomDelays::new(7);
        let mut b = RandomDelays::new(7);
        let mut c = RandomDelays::new(8);
        let mut diverged = false;
        for _ in 0..200 {
            let ch = choice(1, 10, 3, None);
            let da = a.choose_delay(&ch);
            assert!((1..=10).contains(&da));
            assert_eq!(da, b.choose_delay(&ch), "same seed must replay");
            diverged |= da != c.choose_delay(&ch);
        }
        assert!(diverged, "different seeds should explore differently");
    }

    #[test]
    fn imported_schedule_pops_per_channel_then_falls_back() {
        let mut s = ImportedSchedule::new(2);
        s.push(NodeId(0), NodeId(1), 7);
        s.push(NodeId(0), NodeId(1), 4);
        s.push(NodeId(1), NodeId(0), 9);
        assert_eq!(s.imported(), 3);
        let ch01 = choice(1, 10, 3, None);
        let mut ch10 = choice(1, 10, 3, None);
        ch10.from = NodeId(1);
        ch10.to = NodeId(0);
        // Recorded delays come back in channel order…
        assert_eq!(s.choose_delay(&ch01), 7);
        assert_eq!(s.choose_delay(&ch10), 9);
        assert_eq!(s.choose_delay(&ch01), 4);
        // …then the channel is dry and the fallback takes over.
        assert_eq!(s.choose_delay(&ch01), 2);
        assert_eq!(s.consumed(), 3);
        // Out-of-window recordings are returned verbatim — the engine, not
        // this strategy, decides that the replay is malformed and aborts.
        let mut t = ImportedSchedule::new(1);
        t.push(NodeId(0), NodeId(1), 99);
        assert_eq!(t.choose_delay(&ch01), 99);
    }

    #[test]
    fn debug_digest_is_stable_and_discriminating() {
        assert_eq!(
            digest_of_debug(&(1u64, 2u64)),
            digest_of_debug(&(1u64, 2u64))
        );
        assert_ne!(
            digest_of_debug(&(1u64, 2u64)),
            digest_of_debug(&(2u64, 1u64))
        );
    }
}
