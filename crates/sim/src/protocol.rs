//! The protocol trait and the context handed to protocol handlers.

use crate::event::Event;
use crate::ids::NodeId;
use crate::time::SimTime;

/// The three sets of states of the local mutual exclusion problem
/// (Section 3.2 of the paper).
///
/// Every node cycles thinking → hungry → eating → thinking. The application
/// triggers thinking→hungry and eating→thinking; the algorithm triggers
/// hungry→eating, and — uniquely to the mobile setting — may demote an eating
/// node back to hungry when it moves into a new neighborhood.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DiningState {
    /// Not interested in the critical section (the initial state).
    #[default]
    Thinking,
    /// Requested, but not yet granted, the critical section.
    Hungry,
    /// Inside the critical section.
    Eating,
}

impl std::fmt::Display for DiningState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DiningState::Thinking => "thinking",
            DiningState::Hungry => "hungry",
            DiningState::Eating => "eating",
        };
        f.write_str(s)
    }
}

/// A distributed algorithm run by every node of the simulation.
///
/// One value of the implementing type exists per node; the engine calls
/// [`Protocol::on_event`] for every event addressed to that node and reads
/// [`Protocol::dining_state`] after each call to detect transitions (for the
/// safety checker, metrics, and eating-session scheduling).
///
/// Handlers must not block: all "wait until" conditions of the paper's
/// pseudo-code are encoded as protocol state re-evaluated on later events.
pub trait Protocol {
    /// The message type exchanged between nodes.
    type Msg: Clone + std::fmt::Debug;

    /// Handle one event. Outgoing messages and timers are issued through
    /// `ctx`.
    fn on_event(&mut self, ev: Event<Self::Msg>, ctx: &mut Context<'_, Self::Msg>);

    /// The node's current position in the thinking/hungry/eating cycle.
    fn dining_state(&self) -> DiningState;

    /// Coarse, static label of a message — used in delivery trace entries
    /// and message-complexity accounting. The default labels everything
    /// `"msg"`; algorithms override it to distinguish requests, forks, etc.
    fn msg_kind(_msg: &Self::Msg) -> &'static str {
        "msg"
    }

    /// Deterministic fingerprint of this node's protocol state, consulted
    /// by schedule explorers for state-hash deduplication. `None` (the
    /// default) opts out: exploration still works, just without dedup
    /// pruning. Implementations must be pure and history-independent —
    /// equal states must digest equally regardless of how they were
    /// reached.
    fn state_digest(&self) -> Option<u64> {
        None
    }

    /// Deterministic fingerprint of this node's *progress* state: like
    /// [`Protocol::state_digest`] but with monotone observational fields
    /// (meal counters, phase logs, transfer generations) excluded, so the
    /// digest of a node that returns to the same behavioral configuration
    /// repeats. Liveness (lasso) detection keys on it: a repeated global
    /// progress digest means the run has entered a schedulable cycle.
    /// Defaults to [`Protocol::state_digest`], which is correct — merely
    /// pessimal, never unsound — for protocols whose state digest already
    /// excludes monotone fields: cycle detection finds fewer (never bogus)
    /// lassos.
    fn progress_digest(&self) -> Option<u64> {
        self.state_digest()
    }
}

/// Handle through which a protocol interacts with the simulated world during
/// one event: sending messages, reading the neighbor set maintained by the
/// link-level protocol, and setting timers.
pub struct Context<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) now: SimTime,
    pub(crate) neighbors: &'a [NodeId],
    pub(crate) moving: bool,
    pub(crate) outbox: &'a mut Vec<(NodeId, M)>,
    pub(crate) timers: &'a mut Vec<(u64, u64)>,
}

impl<'a, M> Context<'a, M> {
    /// Build a context for a host *outside* the simulation engine — the
    /// live runtime drives the same [`Protocol`] automata from OS threads
    /// and real transports, and needs to hand them a context per event.
    ///
    /// `outbox` collects `(destination, message)` pairs issued via
    /// [`Context::send`]/[`Context::broadcast`]; `timers` collects
    /// `(delay_ticks, token)` pairs issued via [`Context::set_timer`]. The
    /// host owns delivery and timer semantics; the engine's own event loop
    /// never uses this constructor.
    pub fn for_host(
        me: NodeId,
        now: SimTime,
        neighbors: &'a [NodeId],
        moving: bool,
        outbox: &'a mut Vec<(NodeId, M)>,
        timers: &'a mut Vec<(u64, u64)>,
    ) -> Context<'a, M> {
        Context {
            me,
            now,
            neighbors,
            moving,
            outbox,
            timers,
        }
    }
}

impl<M: Clone> Context<'_, M> {
    /// The ID of the node executing the handler.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current virtual time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// The node's current neighbors, sorted by ID. This is the local
    /// variable `N` of the paper, maintained by the link-level protocol.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Whether this node is currently moving. The paper assumes nodes know
    /// their own mobility status.
    pub fn is_moving(&self) -> bool {
        self.moving
    }

    /// Send `msg` to `to`. Delivery is reliable and FIFO while the link
    /// lives; if the link to `to` fails before delivery, the message is
    /// dropped (forks and other shared state die with their link).
    pub fn send(&mut self, to: NodeId, msg: M) {
        debug_assert_ne!(to, self.me, "node sent a message to itself");
        self.outbox.push((to, msg));
    }

    /// Broadcast `msg` to every current neighbor (the paper's `broadcast`,
    /// which is a local one-hop broadcast).
    pub fn broadcast(&mut self, msg: M) {
        for &n in self.neighbors {
            self.outbox.push((n, msg.clone()));
        }
    }

    /// Schedule a [`Event::Timer`] with `token` to fire after `delay` ticks
    /// (at least 1).
    pub fn set_timer(&mut self, delay: u64, token: u64) {
        self.timers.push((delay.max(1), token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dining_state_default_is_thinking() {
        assert_eq!(DiningState::default(), DiningState::Thinking);
        assert_eq!(DiningState::Eating.to_string(), "eating");
    }

    #[test]
    fn context_collects_sends_and_timers() {
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        let neighbors = [NodeId(1), NodeId(2)];
        let mut ctx = Context {
            me: NodeId(0),
            now: SimTime(3),
            neighbors: &neighbors,
            moving: false,
            outbox: &mut outbox,
            timers: &mut timers,
        };
        ctx.send(NodeId(1), 9u8);
        ctx.broadcast(7u8);
        ctx.set_timer(0, 42); // clamped to 1
        assert_eq!(outbox, vec![(NodeId(1), 9), (NodeId(1), 7), (NodeId(2), 7)]);
        assert_eq!(timers, vec![(1, 42)]);
    }
}
