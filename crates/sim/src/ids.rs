//! Node identifiers.

use std::fmt;

/// The unique identifier of a node.
///
/// The paper assumes each node has a unique ID drawn from a totally ordered
/// set; IDs are used to break symmetry (initial fork placement, the
/// designated-static rule when two moving nodes meet, and the initial
/// coloring). In the simulator, IDs are dense indices `0..n`.
///
/// ```
/// use manet_sim::NodeId;
/// let a = NodeId(3);
/// assert!(a < NodeId(4));
/// assert_eq!(a.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// This ID as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId::from(9u32), NodeId(9));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", NodeId(5)), "p5");
        assert_eq!(NodeId(5).to_string(), "p5");
    }
}
