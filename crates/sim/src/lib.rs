//! # `manet-sim` — a deterministic discrete-event simulator for mobile ad hoc networks
//!
//! This crate implements the system model of Attiya, Kogan and Welch,
//! *"Efficient and Robust Local Mutual Exclusion in Mobile Ad Hoc Networks"*
//! (ICDCS 2008 / Kogan's 2008 Technion thesis, Chapter 3):
//!
//! * a set of nodes with unique IDs executing asynchronously,
//! * bidirectional, reliable, FIFO communication links between nodes that are
//!   geographically close (unit-disk connectivity),
//! * a link-level protocol that notifies nodes of link creations and failures,
//!   with the paper's *mobility-biased symmetry breaking*: when a link forms,
//!   each endpoint is told whether it is the "static" or the "moving" side,
//!   and when both endpoints move, exactly one (the smaller ID) is designated
//!   static,
//! * links are created or destroyed **only** when at least one endpoint
//!   moves,
//! * crash faults: a crashed node ceases all activity and never moves again,
//! * an upper bound ν on message delay (configurable), used by experiments to
//!   report response times in the paper's time units.
//!
//! The simulator is single-threaded and fully deterministic: all randomness
//! flows from one seeded RNG, and events are totally ordered by
//! `(time, sequence-number)`. Running the same configuration twice produces
//! byte-identical traces.
//!
//! # Example
//!
//! ```
//! use manet_sim::{Engine, SimConfig, Protocol, Event, Context, DiningState, NodeId};
//!
//! /// A trivial protocol that eats immediately when told to become hungry.
//! /// (It is only safe when nodes have no neighbors!)
//! struct Greedy(DiningState);
//!
//! impl Protocol for Greedy {
//!     type Msg = ();
//!     fn on_event(&mut self, ev: Event<()>, _ctx: &mut Context<'_, ()>) {
//!         match ev {
//!             Event::Hungry => self.0 = DiningState::Eating,
//!             Event::ExitCs => self.0 = DiningState::Thinking,
//!             _ => {}
//!         }
//!     }
//!     fn dining_state(&self) -> DiningState { self.0 }
//! }
//!
//! let cfg = SimConfig::default();
//! // Two isolated nodes, far outside radio range of each other.
//! let mut engine = Engine::new(cfg, vec![(0.0, 0.0), (1000.0, 1000.0)], |_seed| {
//!     Greedy(DiningState::Thinking)
//! });
//! engine.set_hungry_at(manet_sim::SimTime(5), NodeId(0));
//! engine.run_until(manet_sim::SimTime(10));
//! assert_eq!(engine.dining_state(NodeId(0)), DiningState::Eating);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod command;
mod config;
mod engine;
mod event;
mod fault;
mod geo;
mod hooks;
mod ids;
mod protocol;
pub mod rng;
mod sched;
mod shim;
mod time;
mod trace;
mod wheel;
mod world;

pub use channel::{fair_share_rates, ChannelConfig, ChannelStats};
pub use command::Command;
pub use config::SimConfig;
pub use engine::{Engine, EngineStats, NodeSeed, RunAbort};
pub use event::{Event, LinkUpKind};
pub use fault::{
    Burst, CrashWave, DelayAdversary, FaultPlan, FaultStats, LinkFaults, PartitionWindow,
};
pub use geo::CsrAdjacency;
pub use hooks::{Hook, Sink, View};
pub use ids::NodeId;
pub use protocol::{Context, DiningState, Protocol};
pub use rng::SimRng;
pub use sched::{
    digest_of_debug, DeliveryChoice, DigestMode, Fnv, ImportedSchedule, RandomDelays, Strategy,
};
pub use shim::{ArqConfig, ShimStats};
pub use time::SimTime;
pub use trace::{TraceEntry, TraceKind};
pub use wheel::EventQueueKind;
pub use world::{LinkChange, LinkEngine, Position, World};
