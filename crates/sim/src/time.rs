//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in abstract ticks since the start of the
/// simulation.
///
/// The paper's bounds ν (maximum message delay) and τ (maximum eating time)
/// are expressed in the same ticks; see [`crate::SimConfig`].
///
/// ```
/// use manet_sim::SimTime;
/// let t = SimTime(10) + 5;
/// assert_eq!(t, SimTime(15));
/// assert_eq!(t - SimTime(10), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Saturating difference `self - earlier`, in ticks.
    ///
    /// ```
    /// use manet_sim::SimTime;
    /// assert_eq!(SimTime(7).ticks_since(SimTime(3)), 4);
    /// assert_eq!(SimTime(3).ticks_since(SimTime(7)), 0);
    /// ```
    pub fn ticks_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_saturating() {
        assert_eq!(SimTime::MAX + 1, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn ordering_matches_ticks() {
        assert!(SimTime(3) < SimTime(5));
        assert_eq!(SimTime(5) - SimTime(3), 2);
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(SimTime(42).to_string(), "42");
        assert_eq!(format!("{:?}", SimTime(42)), "t=42");
    }
}
