//! Events delivered to protocols.

use crate::ids::NodeId;

/// Which side of a newly created link a node is on.
///
/// The paper assumes the link-level protocol breaks symmetry in favour of
/// static nodes: when a link forms between a static and a moving node the
/// notifications are "as expected"; when it forms between two moving nodes,
/// exactly one of them (here: the smaller ID) receives the notification *for
/// a static node*. The fork for the new link is owned by the `AsStatic` side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkUpKind {
    /// This node is (treated as) the static endpoint of the new link. It
    /// owns the newly created fork.
    AsStatic,
    /// This node is the moving endpoint. It does not own the new fork and —
    /// in the paper's algorithms — must wait for the static side's state
    /// summary before competing again.
    AsMoving,
}

impl LinkUpKind {
    /// The kind delivered to the opposite endpoint of the same link.
    pub fn opposite(self) -> LinkUpKind {
        match self {
            LinkUpKind::AsStatic => LinkUpKind::AsMoving,
            LinkUpKind::AsMoving => LinkUpKind::AsStatic,
        }
    }
}

/// An event delivered to a [`crate::Protocol`].
///
/// `Hungry` and `ExitCs` originate from the application layer (the workload
/// driving the simulation); `Message`, `LinkUp`, `LinkDown` from the network
/// and link-level protocol; `MovementStarted`/`MovementEnded` inform a node
/// about its own motion (the paper assumes nodes are aware of their own
/// mobility, e.g. via start/stop beacons); `Timer` is a self-scheduled
/// wake-up.
#[derive(Clone, Debug, PartialEq)]
pub enum Event<M> {
    /// The application wants the critical section. Delivered only while the
    /// node is thinking.
    Hungry,
    /// The application is done with the critical section. Delivered only
    /// while the node is eating.
    ExitCs,
    /// A message arrived over a live link.
    Message {
        /// The sending neighbor.
        from: NodeId,
        /// The payload.
        msg: M,
    },
    /// A link to `peer` was created; `kind` says which side this node is on.
    LinkUp {
        /// The new neighbor.
        peer: NodeId,
        /// Which side of the symmetry-breaking this node is on.
        kind: LinkUpKind,
    },
    /// The link to `peer` failed (because one endpoint moved away).
    LinkDown {
        /// The lost neighbor.
        peer: NodeId,
    },
    /// This node started moving.
    MovementStarted,
    /// This node stopped moving (arrived at its destination).
    MovementEnded,
    /// A timer set through [`crate::Context::set_timer`] fired.
    Timer {
        /// The token passed when the timer was set.
        token: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_flips() {
        assert_eq!(LinkUpKind::AsStatic.opposite(), LinkUpKind::AsMoving);
        assert_eq!(LinkUpKind::AsMoving.opposite(), LinkUpKind::AsStatic);
    }

    #[test]
    fn events_are_comparable() {
        let a: Event<u8> = Event::Timer { token: 1 };
        assert_eq!(a, Event::Timer { token: 1 });
        assert_ne!(a, Event::Timer { token: 2 });
    }
}
