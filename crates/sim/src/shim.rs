//! Per-link reliable-delivery (ARQ) shim.
//!
//! The paper's model gives every protocol reliable FIFO links, but the
//! PR-2 fault adversary deliberately violates exactly that (drop /
//! duplicate). The shim closes the gap: when [`crate::SimConfig::arq`] is
//! set, every protocol message travels as a sequenced data frame on its
//! directed link incarnation, receivers deliver in order exactly once and
//! acknowledge cumulatively (piggybacked on reverse traffic, or as a
//! standalone ack after an idle timeout), and senders retransmit
//! unacknowledged frames on a timeout with capped exponential backoff.
//!
//! Determinism contract:
//!
//! * With `arq: None` (the default) the engine's behavior — random
//!   streams, traces, digests, stats — is bit-for-bit identical to a build
//!   without this module (pinned by `tests/reliable_delivery.rs`).
//! * With the shim enabled, backoff jitter draws from a *dedicated* RNG
//!   stream seeded from the run seed, so shim runs replay byte-for-byte
//!   and never perturb the fault adversary's stream.
//!
//! Scope: reliability is **per link incarnation**. A link flap (mobility,
//! partition, crash recovery) kills the incarnation and the shim state on
//! both sides with it — protocols already own re-synchronization across
//! incarnations (fork re-minting on `LinkUp`), and the shim must not
//! resurrect traffic from a dead incarnation under their feet.

use std::collections::VecDeque;

use crate::ids::NodeId;
use crate::rng::SimRng;

/// Configuration of the per-link ARQ shim (see [`crate::SimConfig::arq`];
/// `None` disables the shim entirely).
///
/// Times are in ticks; fields set to `0` resolve to defaults derived from
/// the run's ν at engine construction (noted per field).
#[derive(Clone, Debug, PartialEq)]
pub struct ArqConfig {
    /// Maximum unacknowledged frames buffered per directed link. Overflow
    /// aborts the run with [`crate::RunAbort::ShimBufferOverflow`] (a
    /// structured abort, not a panic).
    pub window: usize,
    /// Initial retransmission timeout. `0` resolves to `2ν` (one frame
    /// plus one ack at worst-case delay).
    pub rto_initial: u64,
    /// Upper bound on the backed-off retransmission timeout. `0` resolves
    /// to `16ν`.
    pub rto_cap: u64,
    /// Consecutive timeouts without ack progress before the sender gives
    /// up on a channel and discards its buffered frames. Giving up is
    /// essential: a crashed peer keeps its links up (crashes are silent in
    /// the model), and retransmitting to it forever would turn every crash
    /// into an event-budget livelock abort.
    pub max_retries: u32,
    /// Idle time after which a receiver owing an acknowledgment sends a
    /// standalone ack instead of waiting for reverse traffic to piggyback
    /// on. `0` resolves to ν.
    pub ack_idle: u64,
}

impl Default for ArqConfig {
    fn default() -> ArqConfig {
        ArqConfig {
            window: 64,
            rto_initial: 0,
            rto_cap: 0,
            max_retries: 16,
            ack_idle: 0,
        }
    }
}

impl ArqConfig {
    /// Validate the invariants of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("arq.window must be ≥ 1".into());
        }
        if self.rto_initial != 0 && self.rto_cap != 0 && self.rto_cap < self.rto_initial {
            return Err(format!(
                "arq.rto_cap ({}) below arq.rto_initial ({})",
                self.rto_cap, self.rto_initial
            ));
        }
        Ok(())
    }
}

/// Counters of shim activity over a run (all zero with the shim
/// disabled). Lives inside [`crate::EngineStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShimStats {
    /// Data frames retransmitted after a timeout (go-back-N: every
    /// buffered frame of the timed-out channel counts).
    pub retransmissions: u64,
    /// Standalone acknowledgment frames sent after the idle timeout
    /// (piggybacked acks ride existing frames and are not counted).
    pub acks_sent: u64,
    /// Largest number of unacknowledged frames ever buffered on any
    /// single directed link.
    pub buffer_high_water: u64,
}

/// Sender-side state of one directed channel, valid for one link
/// incarnation (lazy reset on epoch mismatch, exactly like the engine's
/// FIFO slots).
#[derive(Clone, Debug)]
pub(crate) struct SendSlot<M> {
    pub epoch: u64,
    /// Sequence number of the first unacknowledged frame (the front of
    /// `buf`); numbering starts at 1 per incarnation.
    pub base: u64,
    /// Unacknowledged payloads, in sequence order starting at `base`.
    pub buf: VecDeque<M>,
    /// Consecutive timeouts since the last ack progress.
    pub attempts: u32,
    /// Generation of the armed retransmission timer; stale timer events
    /// (superseded by a re-arm) carry an older generation and no-op.
    pub rto_gen: u64,
    pub rto_armed: bool,
}

impl<M> SendSlot<M> {
    fn fresh(epoch: u64) -> SendSlot<M> {
        SendSlot {
            epoch,
            base: 1,
            buf: VecDeque::new(),
            attempts: 0,
            rto_gen: 0,
            rto_armed: false,
        }
    }

    /// Sequence number the next freshly sent frame takes.
    pub fn next_seq(&self) -> u64 {
        self.base + self.buf.len() as u64
    }
}

/// Receiver-side state of one directed channel (same incarnation scoping
/// as [`SendSlot`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RecvSlot {
    pub epoch: u64,
    /// Next in-order sequence number expected; `next - 1` is the
    /// cumulative ack value.
    pub next: u64,
    /// Whether an acknowledgment is owed (set on every data arrival,
    /// cleared when an ack goes out, piggybacked or standalone).
    pub ack_owed: bool,
    /// Generation of the armed idle-ack timer.
    pub ack_gen: u64,
    pub ack_armed: bool,
}

impl RecvSlot {
    fn fresh(epoch: u64) -> RecvSlot {
        RecvSlot {
            epoch,
            next: 1,
            ack_owed: false,
            ack_gen: 0,
            ack_armed: false,
        }
    }
}

/// The engine-side shim state: resolved timing parameters plus dense
/// per-directed-channel slot tables, indexed like `LinkTable`
/// (`from * n + to`).
pub(crate) struct ShimState<M> {
    n: usize,
    pub window: usize,
    pub rto_initial: u64,
    pub rto_cap: u64,
    pub max_retries: u32,
    pub ack_idle: u64,
    /// Dedicated stream for backoff jitter, so shim timing never perturbs
    /// the engine's or the fault adversary's streams.
    pub rng: SimRng,
    send: Vec<SendSlot<M>>,
    recv: Vec<RecvSlot>,
}

impl<M> ShimState<M> {
    pub fn new(n: usize, cfg: &ArqConfig, nu: u64, run_seed: u64) -> ShimState<M> {
        let rto_initial = if cfg.rto_initial == 0 {
            2 * nu.max(1)
        } else {
            cfg.rto_initial
        };
        let rto_cap = if cfg.rto_cap == 0 {
            (16 * nu.max(1)).max(rto_initial)
        } else {
            cfg.rto_cap.max(rto_initial)
        };
        let ack_idle = if cfg.ack_idle == 0 {
            nu.max(1)
        } else {
            cfg.ack_idle
        };
        ShimState {
            n,
            window: cfg.window,
            rto_initial,
            rto_cap,
            max_retries: cfg.max_retries,
            ack_idle,
            rng: SimRng::seed_from_u64(shim_seed(run_seed)),
            send: (0..n * n).map(|_| SendSlot::fresh(0)).collect(),
            recv: vec![RecvSlot::fresh(0); n * n],
        }
    }

    /// Sender-side slot of the `from → to` channel in incarnation
    /// `epoch`, lazily reset when the recorded state belongs to a dead
    /// incarnation.
    pub fn send_slot(&mut self, from: NodeId, to: NodeId, epoch: u64) -> &mut SendSlot<M> {
        let i = from.index() * self.n + to.index();
        let slot = &mut self.send[i];
        if slot.epoch != epoch {
            *slot = SendSlot::fresh(epoch);
        }
        slot
    }

    /// Receiver-side slot of the `from → to` channel (same scoping).
    pub fn recv_slot(&mut self, from: NodeId, to: NodeId, epoch: u64) -> &mut RecvSlot {
        let i = from.index() * self.n + to.index();
        let slot = &mut self.recv[i];
        if slot.epoch != epoch {
            *slot = RecvSlot::fresh(epoch);
        }
        slot
    }

    /// Cumulative ack to piggyback on a frame `from → to`, i.e. how much
    /// of the *reverse* data channel `to → from` has been received in
    /// order — and mark that debt paid. Reads through the lazy reset so a
    /// fresh incarnation acks 0.
    pub fn take_piggyback_ack(&mut self, from: NodeId, to: NodeId, epoch: u64) -> u64 {
        let slot = self.recv_slot(to, from, epoch);
        slot.ack_owed = false;
        slot.next - 1
    }

    /// Backed-off retransmission delay after `attempts` consecutive
    /// timeouts: `min(rto_cap, rto_initial · 2^attempts)` plus up to 25%
    /// jitter from the dedicated stream (desynchronizes competing
    /// senders; the jitter draw happens even at the cap, keeping the
    /// stream's consumption a pure function of the timeout count).
    pub fn backoff(&mut self, attempts: u32) -> u64 {
        let base = self
            .rto_initial
            .checked_shl(attempts.min(32))
            .unwrap_or(u64::MAX)
            .min(self.rto_cap);
        base + self.rng.gen_range(0..=base / 4)
    }
}

/// Seed of the dedicated shim RNG: a salt of the run seed, so distinct
/// runs explore distinct backoff timings with no extra configuration.
pub(crate) fn shim_seed(run_seed: u64) -> u64 {
    run_seed ^ 0xA49_5EED_0C8E_77A1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ArqConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_window_and_inverted_rto() {
        let cfg = ArqConfig {
            window: 0,
            ..ArqConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ArqConfig {
            rto_initial: 100,
            rto_cap: 10,
            ..ArqConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_fields_resolve_from_nu() {
        let state: ShimState<u64> = ShimState::new(2, &ArqConfig::default(), 10, 7);
        assert_eq!(state.rto_initial, 20);
        assert_eq!(state.rto_cap, 160);
        assert_eq!(state.ack_idle, 10);
    }

    #[test]
    fn slots_reset_lazily_on_epoch_change() {
        let mut state: ShimState<u64> = ShimState::new(2, &ArqConfig::default(), 10, 7);
        let (a, b) = (NodeId(0), NodeId(1));
        let slot = state.send_slot(a, b, 0);
        slot.buf.push_back(99);
        slot.attempts = 3;
        assert_eq!(state.send_slot(a, b, 0).buf.len(), 1, "same incarnation");
        let slot = state.send_slot(a, b, 2);
        assert_eq!(slot.base, 1, "new incarnation restarts numbering");
        assert!(slot.buf.is_empty());
        assert_eq!(slot.attempts, 0);
        let r = state.recv_slot(a, b, 0);
        r.next = 5;
        r.ack_owed = true;
        assert_eq!(
            state.take_piggyback_ack(b, a, 0),
            4,
            "acks the reverse channel"
        );
        assert!(!state.recv_slot(a, b, 0).ack_owed, "debt paid");
        assert_eq!(state.recv_slot(a, b, 3).next, 1, "reset on flap");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut state: ShimState<u64> = ShimState::new(2, &ArqConfig::default(), 10, 7);
        // rto_initial 20, cap 160; jitter adds at most base/4.
        for attempts in 0..10 {
            let d = state.backoff(attempts);
            let base = (20u64 << attempts.min(3)).min(160);
            assert!(
                d >= base && d <= base + base / 4,
                "attempts {attempts}: {d}"
            );
        }
        // Huge attempt counts must not overflow the shift.
        assert!(state.backoff(200) >= 160);
    }
}
