//! Behavioral tests of the engine's trickier semantics: link incarnations,
//! crash/motion interactions, command clamping, and hook firing.

use manet_sim::{
    Command, Context, DiningState, Engine, Event, Hook, NodeId, Protocol, SimConfig, SimTime, Sink,
    View,
};

/// Records everything it sees; replies to `Ping` with `Pong`.
#[derive(Default)]
struct Recorder {
    events: Vec<(u64, String)>,
}

#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Ping,
    Pong,
}

impl Protocol for Recorder {
    type Msg = Msg;
    fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
        let t = ctx.time().0;
        match ev {
            Event::Message { from, msg } => {
                self.events.push((t, format!("msg {msg:?} from {from}")));
                if msg == Msg::Ping {
                    ctx.send(from, Msg::Pong);
                }
            }
            Event::LinkUp { peer, kind } => {
                self.events.push((t, format!("up {peer} {kind:?}")));
            }
            Event::LinkDown { peer } => self.events.push((t, format!("down {peer}"))),
            Event::MovementStarted => self.events.push((t, "move-start".into())),
            Event::MovementEnded => self.events.push((t, "move-end".into())),
            Event::Timer { token } => {
                self.events.push((t, format!("timer {token}")));
                if token == 1 {
                    ctx.broadcast(Msg::Ping);
                }
            }
            Event::Hungry | Event::ExitCs => {}
        }
    }
    fn dining_state(&self) -> DiningState {
        DiningState::Thinking
    }
}

fn two_nodes(cfg: SimConfig) -> Engine<Recorder> {
    Engine::new(cfg, vec![(0.0, 0.0), (1.0, 0.0)], |_| Recorder::default())
}

#[test]
fn link_flap_drops_stale_incarnation_messages() {
    // A protocol that sends a Ping to its peer whenever a link comes up:
    // with long in-flight delays, a quick down/up flap leaves old-
    // incarnation messages airborne that must be dropped even though the
    // link exists again.
    struct Flapper;
    impl Protocol for Flapper {
        type Msg = Msg;
        fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Context<'_, Msg>) {
            if let Event::LinkUp { peer, .. } = ev {
                ctx.send(peer, Msg::Ping);
            }
        }
        fn dining_state(&self) -> DiningState {
            DiningState::Thinking
        }
    }
    let cfg = SimConfig {
        min_message_delay: 40,
        max_message_delay: 50,
        ..SimConfig::default()
    };
    let mut e: Engine<Flapper> = Engine::new(cfg, vec![(0.0, 0.0), (10.0, 0.0)], |_| Flapper);
    // p1 hops next to p0 (link up, Pings sent with ~45-tick delays), hops
    // away at 20 (link down: in-flight Pings are stale), and back at 30
    // (new incarnation).
    e.teleport_at(SimTime(10), NodeId(1), (1.0, 0.0));
    e.teleport_at(SimTime(20), NodeId(1), (10.0, 0.0));
    e.teleport_at(SimTime(30), NodeId(1), (1.0, 0.0));
    e.run_until(SimTime(500));
    // The Pings of the first incarnation (sent at t=10) were airborne when
    // the link failed at t=20 and must have been dropped.
    assert!(e.stats().dropped_in_flight >= 2, "{:?}", e.stats());
    // After the second teleport the nodes are linked again.
    assert!(e.world().linked(NodeId(0), NodeId(1)));
    // No stale deliveries: every message either delivered on a live
    // incarnation or counted as dropped; conservation holds.
    let s = e.stats();
    assert_eq!(s.messages_sent, s.messages_delivered + s.messages_dropped());
}

#[test]
fn crash_during_smooth_motion_freezes_position() {
    let mut e = two_nodes(SimConfig::default());
    e.schedule(
        SimTime(1),
        Command::StartMove {
            node: NodeId(1),
            dest: (100.0, 0.0).into(),
            speed: 0.1,
        },
    );
    e.crash_at(SimTime(50), NodeId(1));
    e.run_until(SimTime(5_000));
    let pos = e.world().position(NodeId(1));
    assert!(
        pos.x < 100.0,
        "crashed node kept moving to {pos:?} after the crash"
    );
    assert!(!e.world().is_moving(NodeId(1)));
    assert!(e.world().is_crashed(NodeId(1)));
    // And it stays put forever.
    e.run_until(SimTime(10_000));
    assert_eq!(e.world().position(NodeId(1)), pos);
}

#[test]
fn movement_commands_on_crashed_nodes_are_ignored() {
    let mut e = two_nodes(SimConfig::default());
    e.crash_at(SimTime(1), NodeId(1));
    e.teleport_at(SimTime(10), NodeId(1), (50.0, 0.0));
    e.schedule(
        SimTime(20),
        Command::StartMove {
            node: NodeId(1),
            dest: (50.0, 0.0).into(),
            speed: 1.0,
        },
    );
    e.run_until(SimTime(100));
    assert_eq!(e.world().position(NodeId(1)).x, 1.0);
}

#[test]
fn commands_in_the_past_are_clamped_to_now() {
    let mut e = two_nodes(SimConfig::default());
    e.run_until(SimTime(100));
    // Scheduling "at 5" after time 100 executes immediately, not never.
    e.crash_at(SimTime(5), NodeId(0));
    e.run_until(SimTime(200));
    assert!(e.world().is_crashed(NodeId(0)));
}

#[test]
fn on_move_hooks_fire_for_smooth_and_teleport() {
    use std::cell::RefCell;
    use std::rc::Rc;
    struct MoveLog(Rc<RefCell<Vec<(NodeId, bool)>>>);
    impl Hook<Msg> for MoveLog {
        fn on_move(&mut self, _v: &View<'_>, node: NodeId, started: bool, _s: &mut Sink) {
            self.0.borrow_mut().push((node, started));
        }
    }
    let log = Rc::new(RefCell::new(vec![]));
    let mut e = two_nodes(SimConfig::default());
    e.add_hook(Box::new(MoveLog(log.clone())));
    e.teleport_at(SimTime(5), NodeId(0), (0.5, 0.0));
    e.schedule(
        SimTime(50),
        Command::StartMove {
            node: NodeId(1),
            dest: (3.0, 0.0).into(),
            speed: 0.5,
        },
    );
    e.run_until(SimTime(500));
    let log = log.borrow();
    assert_eq!(log[0], (NodeId(0), true));
    assert_eq!(log[1], (NodeId(0), false));
    assert!(log.contains(&(NodeId(1), true)));
    assert!(log.contains(&(NodeId(1), false)));
}

#[test]
fn restarting_motion_reroutes_the_node() {
    let mut e = two_nodes(SimConfig::default());
    e.schedule(
        SimTime(1),
        Command::StartMove {
            node: NodeId(1),
            dest: (100.0, 0.0).into(),
            speed: 0.5,
        },
    );
    // Half-way through, change destination.
    e.schedule(
        SimTime(50),
        Command::StartMove {
            node: NodeId(1),
            dest: (1.0, 50.0).into(),
            speed: 0.5,
        },
    );
    e.run_until(SimTime(5_000));
    let pos = e.world().position(NodeId(1));
    assert!(
        (pos.x - 1.0).abs() < 1e-6 && (pos.y - 50.0).abs() < 1e-6,
        "{pos:?}"
    );
    assert!(!e.world().is_moving(NodeId(1)));
}

#[test]
fn explicit_graph_engine_runs_protocols() {
    // A 3-leaf star wired explicitly; LinkUp events never fire (static),
    // crashes work.
    let mut e: Engine<Recorder> =
        Engine::new_graph(SimConfig::default(), 4, &[(0, 1), (0, 2), (0, 3)], |seed| {
            assert!(seed.n_nodes == 4);
            Recorder::default()
        });
    assert_eq!(e.world().neighbors(NodeId(0)).len(), 3);
    e.crash_at(SimTime(5), NodeId(2));
    e.run_until(SimTime(100));
    assert!(e.world().is_crashed(NodeId(2)));
    assert!(e.world().linked(NodeId(0), NodeId(2)), "crash keeps links");
}

#[test]
fn two_simultaneous_movers_get_exactly_one_static_side() {
    let mut e = two_nodes(SimConfig {
        radio_range: 1.5,
        ..SimConfig::default()
    });
    // Move both far apart first.
    e.teleport_at(SimTime(1), NodeId(0), (0.0, 0.0));
    e.teleport_at(SimTime(1), NodeId(1), (100.0, 0.0));
    // Then move both toward a meeting point simultaneously (smooth), so
    // the link forms while both are moving.
    for (n, dest) in [(0u32, (50.0, 0.0)), (1u32, (50.5, 0.0))] {
        e.schedule(
            SimTime(10),
            Command::StartMove {
                node: NodeId(n),
                dest: dest.into(),
                speed: 1.0,
            },
        );
    }
    e.run_until(SimTime(5_000));
    assert!(e.world().linked(NodeId(0), NodeId(1)));
    let ups0: Vec<&String> = e
        .protocol(NodeId(0))
        .events
        .iter()
        .map(|(_, s)| s)
        .filter(|s| s.starts_with("up"))
        .collect();
    let ups1: Vec<&String> = e
        .protocol(NodeId(1))
        .events
        .iter()
        .map(|(_, s)| s)
        .filter(|s| s.starts_with("up"))
        .collect();
    // Exactly one side saw AsStatic (the smaller ID by the tie-break rule).
    assert!(ups0.iter().any(|s| s.contains("AsStatic")), "{ups0:?}");
    assert!(ups1.iter().any(|s| s.contains("AsMoving")), "{ups1:?}");
}
