//! Conformance bridge: replay a live run inside the deterministic engine.
//!
//! A live execution is one schedule drawn from the model's adversary —
//! every message took *some* delay in wall time. [`conformance_replay`]
//! exports that delay sequence as an [`ImportedSchedule`] (per-channel
//! FIFO queues of quantized delivery delays) and re-runs the same
//! algorithm, topology, and workload shape under the simulator. Two
//! checks tie the runtimes together:
//!
//! * the replay must be **safe** under the engine's own monitor, and
//! * the **eating census must match**: with a one-shot workload on a
//!   static topology every node eats exactly once no matter how delivery
//!   delays fall, so a live census and a sim census that disagree expose
//!   a lost session — a real divergence between the runtimes, not noise.
//!
//! The replay is *timing-shape* conformance, not lock-step replay: exact
//! event-order replay of a live run inside the sim is a fixed point by
//! construction (the schedule dictates the order), so the meaningful
//! assertion is that the live timing profile, pushed through the model,
//! preserves the outcomes the model promises.

use harness::run_algorithm_with_strategy;
use manet_sim::SimConfig;

use crate::runtime::{LiveConfig, LiveOutcome};

/// What the conformance replay observed.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Eating sessions per node in the live run.
    pub live_census: Vec<u64>,
    /// Completed meals per node in the simulator replay.
    pub sim_census: Vec<u64>,
    /// Safety violations in the replay (must be 0).
    pub sim_violations: usize,
    /// Delivery delays imported from the live trace.
    pub imported_delays: usize,
    /// Whether the two censuses agree.
    pub census_match: bool,
}

impl ConformanceReport {
    /// True when the replay was safe and the censuses agree.
    pub fn conforms(&self) -> bool {
        self.sim_violations == 0 && self.census_match
    }
}

/// Replay `outcome`'s delivery timing inside the deterministic engine and
/// compare outcomes.
///
/// # Errors
///
/// Requires a one-shot, fault-free live run on a static topology — the
/// regime where the eating census is schedule-independent. Anything else
/// would make a census mismatch meaningless.
pub fn conformance_replay(
    cfg: &LiveConfig,
    outcome: &LiveOutcome,
) -> Result<ConformanceReport, String> {
    if !cfg.one_shot {
        return Err("conformance replay needs a one-shot live run (--oneshot)".into());
    }
    if cfg.crash.is_some() || cfg.partition.is_some() || !cfg.moves.is_empty() {
        return Err("conformance replay needs a fault-free, static live run".into());
    }
    let sim = SimConfig {
        seed: cfg.seed,
        ..SimConfig::default()
    };
    // Quantize the live eating time into ticks, clamped under τ.
    let eat_ticks =
        (cfg.eat_ms.saturating_mul(1_000_000) / cfg.tick_ns.max(1)).clamp(1, sim.max_eating_ticks);
    let schedule =
        outcome
            .trace
            .to_schedule(cfg.tick_ns, sim.min_message_delay, sim.max_message_delay);
    let imported_delays = schedule.imported();
    let spec = harness::RunSpec {
        sim,
        horizon: 50_000,
        eat: eat_ticks..=eat_ticks,
        cyclic: false,
        // The live stagger window is up to half a think time; mirror its
        // *shape* in ticks (the exact draw differs — that's the point).
        first_hungry: (1, 400),
        panic_on_violation: false,
        ..harness::RunSpec::default()
    };
    let sim_out = run_algorithm_with_strategy(
        cfg.alg.as_alg_kind(),
        &spec,
        &cfg.positions,
        &[],
        Some(Box::new(schedule)),
    );
    let live_census = outcome.meals.clone();
    let sim_census = sim_out.metrics.meals.clone();
    let census_match = live_census == sim_census;
    Ok(ConformanceReport {
        live_census,
        sim_census,
        sim_violations: sim_out.violations.len(),
        imported_delays,
        census_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_live, LiveAlg};
    use crate::transport::TransportKind;

    #[test]
    fn replay_rejects_cyclic_and_faulty_runs() {
        let cfg = LiveConfig::new(
            LiveAlg::A2,
            TransportKind::Mpsc,
            vec![(0.0, 0.0), (1.0, 0.0)],
        );
        let mut one_shot = cfg.clone();
        one_shot.one_shot = true;
        one_shot.eat_ms = 1;
        let out = run_live(&one_shot).expect("live run");
        assert!(conformance_replay(&cfg, &out).is_err(), "cyclic rejected");
        let mut crashed = one_shot.clone();
        crashed.crash = Some((0, 100));
        assert!(
            conformance_replay(&crashed, &out).is_err(),
            "fault rejected"
        );
    }

    #[test]
    fn one_shot_live_run_conforms_under_replay() {
        let mut cfg = LiveConfig::new(
            LiveAlg::A1Greedy,
            TransportKind::Mpsc,
            vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
        );
        cfg.one_shot = true;
        cfg.eat_ms = 1;
        cfg.duration_ms = 2_000;
        let out = run_live(&cfg).expect("live run");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let report = conformance_replay(&cfg, &out).expect("replay");
        assert!(report.imported_delays > 0, "no delays were imported");
        assert!(
            report.conforms(),
            "live and sim diverged: live {:?}, sim {:?}, violations {}",
            report.live_census,
            report.sim_census,
            report.sim_violations
        );
    }
}
