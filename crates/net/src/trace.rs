//! Live trace capture and validation.
//!
//! Every node thread and the driver stamp the records they emit with a
//! ticket from one shared atomic counter plus a nanosecond reading of the
//! run's shared monotonic origin. Sorting by ticket therefore yields a
//! *total order consistent with real time*: a record stamped earlier
//! happened-before (or was concurrent with) one stamped later, and the
//! per-link envelope sequence numbers embed FIFO delivery inside it.
//!
//! That total order is what lets two sim-grade facilities run over a live
//! execution:
//!
//! * [`LiveTrace::check_safety`] replays the trace against a mirror
//!   [`World`] and feeds it through the very same [`SafetyMonitor`] hook
//!   that audits simulated runs — no second implementation of the
//!   invariant;
//! * [`LiveTrace::to_schedule`] quantizes each observed delivery latency
//!   into virtual-time delivery delays, producing an [`ImportedSchedule`]
//!   the deterministic engine can replay (the conformance bridge).

use harness::{SafetyMonitor, Violation};
use manet_sim::{DiningState, Hook, ImportedSchedule, NodeId, SimTime, Sink, View, World};

/// What happened, as observed by one thread of the live run.
#[derive(Clone, Debug, PartialEq)]
pub enum LiveEventKind {
    /// A node's dining state changed. `session` is the node's eating-session
    /// counter *after* the transition (incremented on entering `Eating`).
    State {
        /// The node that changed state.
        node: NodeId,
        /// State before the transition.
        old: DiningState,
        /// State after the transition.
        new: DiningState,
        /// Eating-session counter after the transition.
        session: u64,
    },
    /// A message was decoded and handed to the receiving protocol.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver (the recording node).
        to: NodeId,
        /// Per-directed-link sequence number from the envelope.
        seq: u64,
        /// Protocol-reported message kind (for the census).
        kind: &'static str,
        /// Receive instant minus the envelope's send instant.
        latency_ns: u64,
    },
    /// A link came up; `a` is the designated static side.
    LinkUp {
        /// Static endpoint.
        a: NodeId,
        /// Moving endpoint.
        b: NodeId,
    },
    /// A link went down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The driver crashed a node.
    Crash {
        /// The victim.
        node: NodeId,
    },
    /// A crashed node restarted as a fresh incarnation (recorded by the
    /// node itself, serialized against its own state records).
    Recover {
        /// The restarted node.
        node: NodeId,
    },
    /// A node's network counters at shutdown — one record per node, the
    /// per-node ledger behind the run-level totals. All zero on a healthy
    /// fault-free transport.
    NetStats {
        /// The reporting node.
        node: NodeId,
        /// Envelopes or frames that failed to decode.
        decode_errors: u64,
        /// Transport send calls that returned an error.
        send_failures: u64,
        /// Data frames retransmitted by the reliable shim.
        retransmissions: u64,
        /// Standalone acknowledgment frames sent by the reliable shim.
        acks_sent: u64,
    },
    /// The driver teleported a node (recorded *before* the resulting
    /// link records, so a validator's mirror world stays in sync).
    Relocate {
        /// The node that moved.
        node: NodeId,
        /// New horizontal coordinate.
        x: f64,
        /// New vertical coordinate.
        y: f64,
    },
}

/// One node's network counters, as reported at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeNetStats {
    /// Envelopes or frames that failed to decode.
    pub decode_errors: u64,
    /// Transport send calls that returned an error.
    pub send_failures: u64,
    /// Data frames retransmitted by the reliable shim.
    pub retransmissions: u64,
    /// Standalone acknowledgment frames sent by the reliable shim.
    pub acks_sent: u64,
}

/// One totally-ordered trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveRecord {
    /// Nanoseconds since the run's shared monotonic origin.
    pub at_ns: u64,
    /// Ticket from the run's shared order counter; the sort key.
    pub order: u64,
    /// The observation itself.
    pub kind: LiveEventKind,
}

/// A captured live run, sorted into its total order.
#[derive(Clone, Debug, Default)]
pub struct LiveTrace {
    records: Vec<LiveRecord>,
}

impl LiveTrace {
    /// Sort `records` by order ticket and wrap them.
    pub fn new(mut records: Vec<LiveRecord>) -> LiveTrace {
        records.sort_by_key(|r| r.order);
        LiveTrace { records }
    }

    /// The records, in total order.
    pub fn records(&self) -> &[LiveRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Eating sessions entered per node (the live census).
    pub fn census(&self, n: usize) -> Vec<u64> {
        let mut meals = vec![0u64; n];
        for r in &self.records {
            if let LiveEventKind::State {
                node,
                new: DiningState::Eating,
                ..
            } = r.kind
            {
                meals[node.index()] += 1;
            }
        }
        meals
    }

    /// Per-node network counters from the shutdown [`LiveEventKind::NetStats`]
    /// records. Nodes that never reported (a thread that died before
    /// shutdown) stay at zero.
    pub fn net_stats(&self, n: usize) -> Vec<NodeNetStats> {
        let mut out = vec![NodeNetStats::default(); n];
        for r in &self.records {
            if let LiveEventKind::NetStats {
                node,
                decode_errors,
                send_failures,
                retransmissions,
                acks_sent,
            } = r.kind
            {
                out[node.index()] = NodeNetStats {
                    decode_errors,
                    send_failures,
                    retransmissions,
                    acks_sent,
                };
            }
        }
        out
    }

    /// Number of message deliveries observed.
    pub fn deliveries(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.kind, LiveEventKind::Deliver { .. }))
            .count()
    }

    /// Hungry→eating latencies in nanoseconds, pooled over all nodes.
    /// Measured from the *first* entry into hungry (a demotion back to
    /// hungry does not restart the clock, matching the paper's response
    /// time).
    pub fn hungry_to_eat_latencies_ns(&self, n: usize) -> Vec<u64> {
        let mut since = vec![None; n];
        let mut out = Vec::new();
        for r in &self.records {
            if let LiveEventKind::State { node, old, new, .. } = r.kind {
                let slot = &mut since[node.index()];
                match (old, new) {
                    (DiningState::Thinking, DiningState::Hungry) => {
                        slot.get_or_insert(r.at_ns);
                    }
                    (_, DiningState::Eating) => {
                        if let Some(h) = slot.take() {
                            out.push(r.at_ns.saturating_sub(h));
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Quantize every observed delivery latency into a virtual-time delay
    /// and build the per-channel schedule the deterministic engine can
    /// replay. Latencies are clamped into `[min_delay, max_delay]` ticks —
    /// the engine rejects out-of-window replay delays as malformed
    /// schedules, so quantization is where real latencies get squeezed into
    /// the model's legal window.
    pub fn to_schedule(&self, tick_ns: u64, min_delay: u64, max_delay: u64) -> ImportedSchedule {
        let tick_ns = tick_ns.max(1);
        let lo = min_delay.max(1);
        let mut sched = ImportedSchedule::new(lo);
        for r in &self.records {
            if let LiveEventKind::Deliver {
                from,
                to,
                latency_ns,
                ..
            } = r.kind
            {
                let ticks = (latency_ns / tick_ns).clamp(lo, max_delay.max(lo));
                sched.push(from, to, ticks);
            }
        }
        sched
    }

    /// Replay the trace against a mirror world and run it through the
    /// harness [`SafetyMonitor`] — the same hook that audits simulated
    /// runs. Returns every recorded violation (empty = the live run never
    /// had two current neighbors eating at once, and never ate next to a
    /// neighbor that crashed mid-meal).
    pub fn check_safety(&self, radio_range: f64, positions: &[(f64, f64)]) -> Vec<Violation> {
        let mut world = World::new(radio_range, positions.iter().map(|&p| p.into()).collect());
        let n = world.len();
        let mut dining = vec![DiningState::Thinking; n];
        let mut sessions = vec![0u64; n];
        let (mut monitor, log) = SafetyMonitor::new(false);
        let mut sink = Sink::detached();
        for r in &self.records {
            let now = SimTime(r.at_ns);
            match r.kind {
                LiveEventKind::State {
                    node, new, session, ..
                } => {
                    dining[node.index()] = new;
                    sessions[node.index()] = session;
                }
                LiveEventKind::Crash { node } => {
                    // The dining cache is still a live reading at the crash
                    // instant: notify the monitor before freezing the node.
                    let view = View::compose(now, &world, &dining, &sessions);
                    Hook::<()>::on_crash(&mut monitor, &view, node, &mut sink);
                    world.mark_crashed(node);
                }
                LiveEventKind::Recover { node } => {
                    // Fresh incarnation: it starts Thinking (no State record
                    // bridges the frozen pre-crash reading), and the monitor
                    // drops its frozen-eater bookkeeping for the node.
                    world.mark_recovered(node);
                    dining[node.index()] = DiningState::Thinking;
                    let view = View::compose(now, &world, &dining, &sessions);
                    Hook::<()>::on_recover(&mut monitor, &view, node, &mut sink);
                }
                LiveEventKind::Relocate { node, x, y } => {
                    // The adjacency change is what matters for the
                    // invariant; the LinkUp/LinkDown records that follow
                    // are documentation of what the nodes were told.
                    let _ = world.relocate(node, (x, y).into());
                }
                LiveEventKind::Deliver { .. }
                | LiveEventKind::LinkUp { .. }
                | LiveEventKind::LinkDown { .. }
                | LiveEventKind::NetStats { .. } => {}
            }
            let view = View::compose(now, &world, &dining, &sessions);
            Hook::<()>::on_quantum_end(&mut monitor, &view, &mut sink);
            sink.drain();
        }
        let out = log.borrow().clone();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(
        order: u64,
        node: u32,
        old: DiningState,
        new: DiningState,
        session: u64,
    ) -> LiveRecord {
        LiveRecord {
            at_ns: order * 1_000,
            order,
            kind: LiveEventKind::State {
                node: NodeId(node),
                old,
                new,
                session,
            },
        }
    }

    const T: DiningState = DiningState::Thinking;
    const H: DiningState = DiningState::Hungry;
    const E: DiningState = DiningState::Eating;

    #[test]
    fn serial_eating_by_neighbors_is_safe() {
        let trace = LiveTrace::new(vec![
            state(1, 0, T, H, 0),
            state(2, 0, H, E, 1),
            state(3, 0, E, T, 1),
            state(4, 1, T, H, 0),
            state(5, 1, H, E, 1),
            state(6, 1, E, T, 1),
        ]);
        let violations = trace.check_safety(1.5, &[(0.0, 0.0), (1.0, 0.0)]);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(trace.census(2), vec![1, 1]);
        assert_eq!(trace.hungry_to_eat_latencies_ns(2), vec![1_000, 1_000]);
    }

    #[test]
    fn concurrent_neighbor_eating_is_flagged() {
        let trace = LiveTrace::new(vec![
            state(1, 0, T, H, 0),
            state(2, 1, T, H, 0),
            state(3, 0, H, E, 1),
            state(4, 1, H, E, 1),
        ]);
        let violations = trace.check_safety(1.5, &[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(violations.len(), 1);
        assert_eq!((violations[0].a, violations[0].b), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn non_neighbors_may_eat_concurrently() {
        // Same schedule as above, but the nodes are out of radio range.
        let trace = LiveTrace::new(vec![
            state(1, 0, T, H, 0),
            state(2, 1, T, H, 0),
            state(3, 0, H, E, 1),
            state(4, 1, H, E, 1),
        ]);
        let violations = trace.check_safety(1.5, &[(0.0, 0.0), (10.0, 0.0)]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn eating_beside_a_neighbor_crashed_mid_meal_is_flagged() {
        let mut records = vec![
            state(1, 1, T, H, 0),
            state(2, 1, H, E, 1),
            LiveRecord {
                at_ns: 3_000,
                order: 3,
                kind: LiveEventKind::Crash { node: NodeId(1) },
            },
            state(4, 0, T, H, 0),
            state(5, 0, H, E, 1),
        ];
        // Out-of-order input exercises the sort.
        records.reverse();
        let trace = LiveTrace::new(records);
        let violations = trace.check_safety(1.5, &[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(violations.len(), 1, "{violations:?}");
    }

    #[test]
    fn relocation_updates_the_mirror_adjacency() {
        // Node 1 teleports next to node 0, then both eat: violation only
        // because the mirror world tracked the move.
        let trace = LiveTrace::new(vec![
            LiveRecord {
                at_ns: 500,
                order: 1,
                kind: LiveEventKind::Relocate {
                    node: NodeId(1),
                    x: 1.0,
                    y: 0.0,
                },
            },
            state(2, 0, T, H, 0),
            state(3, 1, T, H, 0),
            state(4, 0, H, E, 1),
            state(5, 1, H, E, 1),
        ]);
        let violations = trace.check_safety(1.5, &[(0.0, 0.0), (10.0, 0.0)]);
        assert_eq!(violations.len(), 1, "{violations:?}");
    }

    #[test]
    fn schedule_export_quantizes_latencies_per_channel() {
        let deliver = |order: u64, from: u32, to: u32, latency_ns: u64| LiveRecord {
            at_ns: order * 1_000,
            order,
            kind: LiveEventKind::Deliver {
                from: NodeId(from),
                to: NodeId(to),
                seq: order,
                kind: "req",
                latency_ns,
            },
        };
        let trace = LiveTrace::new(vec![
            deliver(1, 0, 1, 2_500),  // 2 ticks at tick_ns = 1000
            deliver(2, 0, 1, 25_000), // clamped to ν = 10
            deliver(3, 1, 0, 0),      // clamped up to the minimum delay
        ]);
        let sched = trace.to_schedule(1_000, 1, 10);
        assert_eq!(sched.imported(), 3);
    }
}
