//! The per-node automaton host inside a shard worker — the sharded
//! mirror of the thread-per-node `NodeCore`, minus a thread of its own.
//!
//! The differences from `NodeCore` are exactly the runtime seams:
//! records carry hybrid-clock stamps instead of global tickets, sends
//! land in the worker's routing buffer instead of a per-node transport,
//! wakeup deadlines are armed on the worker's timing wheel instead of a
//! per-thread poll timeout, and the reliable-delivery shim is absent
//! (`LiveConfig::validate` rejects `reliable` under the sharded
//! runtime). Everything the protocol can observe — `Context` contents,
//! envelope framing, the record-before-transmit invariant, the workload
//! distribution and its seeding — is identical.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use manet_sim::{Context, DiningState, Event, NodeId, Protocol, SimRng, SimTime};

use super::clock::{HybridClock, StampedRecord};
use super::ShardShared;
use crate::codec::{decode_frame, encode_frame, WireMsg};
use crate::trace::LiveEventKind;
use crate::transport::{decode_envelope, encode_envelope, ENV_ACK, ENV_DATA};

/// The worker-owned output side of every node call: the shard clock,
/// the stamped record stream, and the routing buffer for outbound
/// envelopes. Owned by the worker (not the node) so one borrow serves
/// every node in the shard.
pub(crate) struct WireOut {
    pub(crate) clock: HybridClock,
    pub(crate) records: Vec<StampedRecord>,
    /// `(to, envelope)` pairs the worker routes after the call — into
    /// the local queue for same-shard peers, into a per-shard-pair
    /// batch otherwise.
    pub(crate) sends: Vec<(NodeId, Vec<u8>)>,
}

impl WireOut {
    pub(crate) fn new() -> WireOut {
        WireOut {
            clock: HybridClock::new(),
            records: Vec::new(),
            sends: Vec::new(),
        }
    }
}

/// One hosted protocol automaton plus its workload state.
pub(crate) struct ShardNode<P: Protocol> {
    me: NodeId,
    tick_ns: u64,
    eat_ns: u64,
    one_shot: bool,
    closed_loop: bool,
    mean_think_ns: u64,
    rng: SimRng,
    proto: P,
    /// Sorted, like `NodeCore`'s.
    neighbors: Vec<NodeId>,
    moving: bool,
    crashed: bool,
    dining: DiningState,
    session: u64,
    ate_once: bool,
    /// Per-peer envelope sequence numbers; a map, not a dense vector,
    /// so 10k-node shards do not pay O(n) memory per node.
    send_seq: HashMap<u32, u64>,
    /// `(deadline_ns, token)` pairs from `Context::set_timer`.
    timers: Vec<(u64, u64)>,
    next_hungry: Option<u64>,
    exit_at: Option<u64>,
    outbox: Vec<(NodeId, P::Msg)>,
    timer_buf: Vec<(u64, u64)>,
    /// Fresh incarnation swapped in on a driver `Recover`.
    spare: Option<P>,
    n_decode_errors: u64,
    n_send_failures: u64,
}

impl<P> ShardNode<P>
where
    P: Protocol,
    P::Msg: WireMsg,
{
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: NodeId,
        proto: P,
        spare: Option<P>,
        neighbors: Vec<NodeId>,
        seed: u64,
        tick_ns: u64,
        rate: f64,
        eat_ns: u64,
        one_shot: bool,
        closed_loop: bool,
        now_ns: u64,
    ) -> ShardNode<P> {
        // Identical seeding and stagger to `node_main`, so the sharded
        // workload is statistically the same run.
        let mut rng = SimRng::seed_from_u64(seed ^ 0x11FE_0000 ^ ((me.0 as u64) << 32));
        let mean_think_ns = ((1e9 / rate) as u64).max(1);
        let first = now_ns + rng.gen_range(0..=mean_think_ns / 2);
        let dining = proto.dining_state();
        ShardNode {
            me,
            tick_ns,
            eat_ns,
            one_shot,
            closed_loop,
            mean_think_ns,
            rng,
            proto,
            neighbors,
            moving: false,
            crashed: false,
            dining,
            session: 0,
            ate_once: false,
            send_seq: HashMap::new(),
            timers: Vec::new(),
            next_hungry: Some(first),
            exit_at: None,
            outbox: Vec::new(),
            timer_buf: Vec::new(),
            spare,
            n_decode_errors: 0,
            n_send_failures: 0,
        }
    }

    fn record(&self, kind: LiveEventKind, wire: &mut WireOut, shared: &ShardShared) {
        let at_ns = shared.now_ns();
        let clock = wire.clock.stamp(at_ns / self.tick_ns);
        wire.records.push(StampedRecord { clock, at_ns, kind });
    }

    /// Feed one event to the automaton, flush what it emitted, and do
    /// the workload bookkeeping for any dining transition.
    fn apply(&mut self, ev: Event<P::Msg>, wire: &mut WireOut, shared: &ShardShared) {
        let now = shared.now_ns();
        {
            let mut ctx = Context::for_host(
                self.me,
                SimTime(now / self.tick_ns),
                &self.neighbors,
                self.moving,
                &mut self.outbox,
                &mut self.timer_buf,
            );
            self.proto.on_event(ev, &mut ctx);
        }
        for (delay_ticks, token) in std::mem::take(&mut self.timer_buf) {
            self.timers
                .push((now + delay_ticks.saturating_mul(self.tick_ns), token));
        }
        // Record any dining transition BEFORE queuing the messages that
        // announce it, as in `NodeCore::apply`: the batch that carries
        // these sends is sealed with a clock stamp at least as large as
        // the transition's, so the receiving shard's delivery (and any
        // entry it enables) merges strictly after this record.
        let new = self.proto.dining_state();
        let old = self.dining;
        if new != old {
            self.dining = new;
            if new == DiningState::Eating {
                self.session += 1;
                self.exit_at = Some(shared.now_ns() + self.eat_ns);
                if !self.ate_once {
                    self.ate_once = true;
                    shared.ate.fetch_add(1, Ordering::Relaxed);
                }
            }
            if old == DiningState::Eating {
                self.exit_at = None;
                if new == DiningState::Thinking && !self.one_shot {
                    let think = if self.closed_loop {
                        0
                    } else {
                        self.draw_think()
                    };
                    self.next_hungry = Some(shared.now_ns() + think);
                }
            }
            self.record(
                LiveEventKind::State {
                    node: self.me,
                    old,
                    new,
                    session: self.session,
                },
                wire,
                shared,
            );
        }
        for (to, msg) in std::mem::take(&mut self.outbox) {
            self.transmit(to, msg, wire, shared);
        }
    }

    fn draw_think(&mut self) -> u64 {
        let lo = (self.mean_think_ns / 2).max(1);
        let hi = lo + self.mean_think_ns;
        self.rng.gen_range(lo..=hi)
    }

    fn transmit(&mut self, to: NodeId, msg: P::Msg, wire: &mut WireOut, shared: &ShardShared) {
        if self.crashed || to == self.me || !self.neighbors.contains(&to) {
            return;
        }
        if shared.severed(self.me, to) {
            // Severed at send time: the message dies silently, exactly
            // like the engine's `dropped_at_send`.
            return;
        }
        let seq = self.send_seq.entry(to.0).or_insert(0);
        *seq += 1;
        let seq = *seq;
        let frame = encode_frame(&msg);
        let env = encode_envelope(self.me, ENV_DATA, seq, 0, shared.now_ns(), &frame);
        wire.sends.push((to, env));
        shared.sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply a driver control event (never `Ctrl::Shutdown` — the
    /// worker handles shutdown itself).
    pub(crate) fn handle_ctrl(
        &mut self,
        ctrl: crate::runtime::Ctrl,
        wire: &mut WireOut,
        shared: &ShardShared,
    ) {
        use crate::runtime::Ctrl;
        match ctrl {
            Ctrl::Shutdown => {}
            Ctrl::Crash => {
                self.crashed = true;
                self.record(LiveEventKind::Crash { node: self.me }, wire, shared);
            }
            Ctrl::Recover => {
                if self.crashed {
                    if let Some(fresh) = self.spare.take() {
                        self.crashed = false;
                        self.proto = fresh;
                        self.neighbors.clear();
                        self.timers.clear();
                        self.outbox.clear();
                        self.send_seq.clear();
                        self.moving = false;
                        self.exit_at = None;
                        self.dining = self.proto.dining_state();
                        self.record(LiveEventKind::Recover { node: self.me }, wire, shared);
                        let think = self.draw_think();
                        self.next_hungry = Some(shared.now_ns() + think);
                    }
                }
            }
            _ if self.crashed => {}
            Ctrl::LinkUp { peer, kind } => {
                if let Err(slot) = self.neighbors.binary_search(&peer) {
                    self.neighbors.insert(slot, peer);
                }
                self.apply(Event::LinkUp { peer, kind }, wire, shared);
            }
            Ctrl::LinkDown { peer } => {
                if let Ok(slot) = self.neighbors.binary_search(&peer) {
                    self.neighbors.remove(slot);
                }
                self.apply(Event::LinkDown { peer }, wire, shared);
            }
            Ctrl::MoveStarted => {
                self.moving = true;
                self.apply(Event::MovementStarted, wire, shared);
            }
            Ctrl::MoveEnded => {
                self.moving = false;
                self.apply(Event::MovementEnded, wire, shared);
            }
        }
    }

    /// Fire every due workload deadline and timer.
    pub(crate) fn tick(&mut self, wire: &mut WireOut, shared: &ShardShared) {
        if self.crashed {
            return;
        }
        let now = shared.now_ns();
        if self.dining == DiningState::Thinking {
            if let Some(at) = self.next_hungry {
                if at <= now {
                    self.next_hungry = None;
                    self.apply(Event::Hungry, wire, shared);
                }
            }
        }
        if self.dining == DiningState::Eating {
            if let Some(at) = self.exit_at {
                if at <= now {
                    self.exit_at = None;
                    self.apply(Event::ExitCs, wire, shared);
                }
            }
        }
        while let Some(i) = self.timers.iter().position(|&(at, _)| at <= now) {
            let (_, token) = self.timers.swap_remove(i);
            self.apply(Event::Timer { token }, wire, shared);
        }
    }

    /// The earliest armed deadline in wall nanoseconds, for the wheel.
    pub(crate) fn earliest_deadline_ns(&self) -> Option<u64> {
        if self.crashed {
            return None;
        }
        self.next_hungry
            .iter()
            .chain(self.exit_at.iter())
            .chain(self.timers.iter().map(|(at, _)| at))
            .min()
            .copied()
    }

    fn count_decode_error(&mut self, shared: &ShardShared) {
        self.n_decode_errors += 1;
        shared.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Process one envelope from the data plane.
    pub(crate) fn on_envelope(&mut self, env: &[u8], wire: &mut WireOut, shared: &ShardShared) {
        if self.crashed {
            return;
        }
        let (from, env_kind, seq, _ack, sent_ns, frame) = match decode_envelope(env) {
            Ok(parts) => parts,
            Err(_) => {
                self.count_decode_error(shared);
                return;
            }
        };
        // In-flight losses, as in `NodeCore::on_envelope`.
        if self.neighbors.binary_search(&from).is_err() || shared.severed(from, self.me) {
            return;
        }
        if env_kind == ENV_ACK {
            // The sharded runtime never arms the reliable shim; a stray
            // ack is dropped, not an error.
            return;
        }
        if env_kind != ENV_DATA {
            self.count_decode_error(shared);
            return;
        }
        match decode_frame::<P::Msg>(frame) {
            Ok(msg) => {
                let latency_ns = shared.now_ns().saturating_sub(sent_ns);
                self.record(
                    LiveEventKind::Deliver {
                        from,
                        to: self.me,
                        seq,
                        kind: P::msg_kind(&msg),
                        latency_ns,
                    },
                    wire,
                    shared,
                );
                shared.delivered.fetch_add(1, Ordering::Relaxed);
                self.apply(Event::Message { from, msg }, wire, shared);
            }
            Err(_) => {
                self.count_decode_error(shared);
            }
        }
    }

    /// Emit the shutdown `NetStats` record, like a node thread does on
    /// `Ctrl::Shutdown`.
    pub(crate) fn emit_net_stats(&mut self, wire: &mut WireOut, shared: &ShardShared) {
        self.record(
            LiveEventKind::NetStats {
                node: self.me,
                decode_errors: self.n_decode_errors,
                send_failures: self.n_send_failures,
                retransmissions: 0,
                acks_sent: 0,
            },
            wire,
            shared,
        );
    }
}
