//! A per-shard timing wheel for node wakeups — the live mirror of the
//! simulator's bounded-horizon event-queue core (`manet_sim`'s wheel).
//!
//! Each worker owns one wheel keyed on virtual ticks (`wall_ns /
//! tick_ns`). Almost every deadline — think times, eating exits,
//! protocol timers — lands within a small window above "now", so wakeups
//! hash into per-tick buckets and both `schedule` and `advance` stay
//! O(1) amortized; the rare far deadline parks in a small overflow list
//! consulted as the cursor reaches it, exactly the sim core's shape.

/// Per-tick wakeup buckets over local node indices.
pub(crate) struct ShardWheel {
    slots: Vec<Vec<(u64, u32)>>,
    /// Next tick not yet drained.
    cursor: u64,
    len: u64,
    /// Wakeups beyond the horizon, re-filed as the cursor approaches.
    overflow: Vec<(u64, u32)>,
}

impl ShardWheel {
    pub(crate) fn new(slots: usize) -> ShardWheel {
        let slots = slots.max(1);
        ShardWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            len: slots as u64,
            overflow: Vec::new(),
        }
    }

    /// Arm a wakeup for local node `node` at virtual tick `tick`
    /// (clamped forward to the cursor: the past fires immediately on the
    /// next advance).
    pub(crate) fn schedule(&mut self, tick: u64, node: u32) {
        let t = tick.max(self.cursor);
        if t < self.cursor + self.len {
            self.slots[(t % self.len) as usize].push((t, node));
        } else {
            self.overflow.push((t, node));
        }
    }

    /// Drain every wakeup due at or before `now` into `due`.
    pub(crate) fn advance(&mut self, now: u64, due: &mut Vec<u32>) {
        if now < self.cursor {
            return;
        }
        if now - self.cursor + 1 >= self.len {
            // The cursor fell a full lap behind (a long stall): sweep
            // every bucket once instead of walking tick by tick.
            for slot in &mut self.slots {
                slot.retain(|&(t, node)| {
                    if t <= now {
                        due.push(node);
                        false
                    } else {
                        true
                    }
                });
            }
        } else {
            let mut t = self.cursor;
            while t <= now {
                self.slots[(t % self.len) as usize].retain(|&(tt, node)| {
                    if tt <= now {
                        due.push(node);
                        false
                    } else {
                        true
                    }
                });
                t += 1;
            }
        }
        self.cursor = now + 1;
        let (cursor, len) = (self.cursor, self.len);
        let mut i = 0;
        while i < self.overflow.len() {
            let (t, node) = self.overflow[i];
            if t <= now {
                due.push(node);
                self.overflow.swap_remove(i);
            } else if t < cursor + len {
                self.slots[(t % len) as usize].push((t, node));
                self.overflow.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// The earliest armed tick, if any (drives the worker's sleep).
    pub(crate) fn next_deadline(&self) -> Option<u64> {
        let mut best: Option<u64> = self.overflow.iter().map(|&(t, _)| t).min();
        for d in 0..self.len {
            if best.is_some_and(|b| self.cursor + d >= b) {
                break;
            }
            for &(t, _) in &self.slots[((self.cursor + d) % self.len) as usize] {
                if best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut ShardWheel, now: u64) -> Vec<u32> {
        let mut due = Vec::new();
        w.advance(now, &mut due);
        due.sort_unstable();
        due
    }

    #[test]
    fn due_wakeups_fire_and_future_ones_wait() {
        let mut w = ShardWheel::new(8);
        w.schedule(2, 0);
        w.schedule(5, 1);
        w.schedule(5, 2);
        assert_eq!(w.next_deadline(), Some(2));
        assert_eq!(drain(&mut w, 1), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 4), vec![0]);
        assert_eq!(w.next_deadline(), Some(5));
        assert_eq!(drain(&mut w, 5), vec![1, 2]);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn far_deadlines_park_in_overflow_and_still_fire() {
        let mut w = ShardWheel::new(4);
        w.schedule(100, 7);
        assert_eq!(w.next_deadline(), Some(100));
        assert_eq!(drain(&mut w, 50), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 100), vec![7]);
    }

    #[test]
    fn lapped_entries_do_not_fire_early() {
        let mut w = ShardWheel::new(4);
        // tick 6 hashes into the same bucket as tick 2 (len 4).
        w.schedule(6, 1);
        w.schedule(2, 0);
        assert_eq!(drain(&mut w, 2), vec![0]);
        assert_eq!(drain(&mut w, 5), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 6), vec![1]);
    }

    #[test]
    fn long_stall_sweeps_everything_once() {
        let mut w = ShardWheel::new(4);
        for i in 0..4u64 {
            w.schedule(i, i as u32);
        }
        w.schedule(9, 9);
        assert_eq!(drain(&mut w, 1_000), vec![0, 1, 2, 3, 9]);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn past_schedules_fire_on_the_next_advance() {
        let mut w = ShardWheel::new(4);
        assert_eq!(drain(&mut w, 10), Vec::<u32>::new());
        w.schedule(3, 5); // already past: clamped to the cursor
        assert_eq!(drain(&mut w, 11), vec![5]);
    }
}
