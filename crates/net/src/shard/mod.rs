//! The sharded live runtime: M worker threads host n ≫ M nodes.
//!
//! The thread-per-node runtime (`crate::runtime`) is faithful but tops
//! out at hundreds of nodes — n OS threads oversubscribe the host, and
//! its single shared ticket counter serializes every observation. This
//! module runs the *same* `Protocol` automata on a fixed worker pool:
//!
//! - **Contiguous shards.** Worker s owns nodes `[start_s, start_s +
//!   size_s)`; ownership never migrates, so all per-node state is
//!   thread-local to its worker.
//! - **Per-shard run queues on a timing wheel.** Each worker drives its
//!   nodes from a [`wheel::ShardWheel`] — the live mirror of the sim
//!   core's bounded-horizon event queue — plus a local delivery queue
//!   for same-shard traffic.
//! - **Batched frames.** Cross-shard envelopes accumulate into one
//!   buffer per shard pair per flush ([`batch`]), riding a bounded SPSC
//!   ring ([`ring`]) in-process or a single datagram on UDP.
//! - **Backpressure, not buffering.** A full ring stalls the producer
//!   briefly and then aborts the run with a structured
//!   [`ShardAbort::RingBackpressure`] — the live analogue of the
//!   engine's `RunAbort::ChannelQueueOverflow`.
//! - **Per-shard ticket ranges.** The global atomic ticket counter is
//!   replaced by one hybrid logical clock per shard ([`clock`]); the
//!   per-shard streams are k-way merged into one dense total order at
//!   export, and the merged [`crate::trace::LiveTrace`] flows through
//!   the existing safety-monitor mirror-World path unchanged.
//!
//! The driver (the calling thread) keeps the exact fault/mobility
//! semantics of the thread-per-node runtime: the mirror `World`, the
//! `LinkGate`, crash/recover/partition/teleport actions, and the same
//! static/moving symmetry breaking. See DESIGN.md §15.

mod batch;
pub mod clock;
mod node;
mod ring;
mod wheel;

pub use clock::{merge_stamped, HybridClock, StampedRecord};

use std::collections::VecDeque;
use std::fmt;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use manet_sim::{LinkChange, LinkUpKind, NodeId, NodeSeed, Protocol, SimConfig, World};

use crate::codec::WireMsg;
use crate::runtime::{Ctrl, LiveConfig, LiveOutcome, LiveRuntime};
use crate::trace::{LiveEventKind, LiveTrace};
use crate::transport::{LinkGate, TransportKind};

use batch::{batch_begin, batch_count, batch_decode, batch_push, batch_seal};
use node::{ShardNode, WireOut};
use ring::{ring, RingReceiver, RingSender};
use wheel::ShardWheel;

/// Why a sharded run stopped instead of finishing — the live runtime's
/// analogue of the simulator's `RunAbort`. Rendered into the `Err`
/// returned by `run_live`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardAbort {
    /// A cross-shard SPSC ring stayed full past the backpressure
    /// budget: the consumer shard cannot keep up and unbounded
    /// buffering is refused by design.
    RingBackpressure {
        /// The producing shard.
        from_shard: u32,
        /// The shard whose inbound ring stayed full.
        to_shard: u32,
        /// Ring capacity in batches.
        capacity: usize,
    },
}

impl fmt::Display for ShardAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardAbort::RingBackpressure {
                from_shard,
                to_shard,
                capacity,
            } => write!(
                f,
                "cross-shard ring {from_shard}->{to_shard} stayed full past the \
                 backpressure budget (capacity {capacity} batches); the consumer \
                 shard cannot keep up"
            ),
        }
    }
}

/// Internal knobs of the sharded runtime, separated from [`LiveConfig`]
/// so tests can force the backpressure path deterministically.
#[derive(Debug, Clone, Copy)]
pub struct ShardTuning {
    /// Capacity of each cross-shard ring, in batches (0 = always full).
    pub ring_capacity: usize,
    /// How long a producer retries a full ring before aborting.
    pub backpressure_wait_ms: u64,
}

impl Default for ShardTuning {
    fn default() -> ShardTuning {
        ShardTuning {
            ring_capacity: 1024,
            backpressure_wait_ms: 2_000,
        }
    }
}

/// State shared by the driver and every worker.
pub(crate) struct ShardShared {
    origin: Instant,
    /// Present only when a fault (crash/partition) can sever links;
    /// fault-free scale runs skip the O(n²) allocation.
    gate: Option<LinkGate>,
    pub(crate) sent: AtomicU64,
    pub(crate) delivered: AtomicU64,
    pub(crate) decode_errors: AtomicU64,
    pub(crate) send_failures: AtomicU64,
    /// Nodes that have eaten at least once (one-shot early stop).
    pub(crate) ate: AtomicU64,
    /// Raised on abort so every thread winds down promptly.
    stop: AtomicBool,
    abort: Mutex<Option<ShardAbort>>,
    /// Worker thread handles for unparking, set once after spawn.
    wakers: OnceLock<Vec<Thread>>,
}

impl ShardShared {
    pub(crate) fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    pub(crate) fn severed(&self, a: NodeId, b: NodeId) -> bool {
        self.gate.as_ref().is_some_and(|g| g.is_severed(a, b))
    }

    fn wake(&self, shard: usize) {
        if let Some(wakers) = self.wakers.get() {
            if let Some(t) = wakers.get(shard) {
                t.unpark();
            }
        }
    }
}

/// Driver → worker control plane.
enum WorkerMsg {
    /// A control event for one owned node, stamped with the driver's
    /// clock so the node's reaction merges after the driver's records.
    Node {
        clock: u64,
        node: NodeId,
        ctrl: Ctrl,
    },
    /// Emit final per-node stats and exit.
    Shutdown { clock: u64 },
}

/// Per-worker transport endpoints.
enum Links {
    /// In-process: one bounded SPSC ring per ordered shard pair.
    Rings {
        /// Inbound rings, indexed by producing shard (`None` at self).
        rx: Vec<Option<RingReceiver<Vec<u8>>>>,
        /// Outbound rings, indexed by consuming shard (`None` at self).
        tx: Vec<Option<RingSender<Vec<u8>>>>,
    },
    /// One nonblocking UDP socket per shard; batches ride datagrams.
    Udp {
        socket: UdpSocket,
        peers: Vec<SocketAddr>,
    },
}

/// Keep UDP batch datagrams under the practical payload ceiling.
const UDP_BATCH_LIMIT: usize = 60_000;

/// Immutable per-worker parameters.
struct WorkerEnv {
    shard: u32,
    base: u32,
    workers: usize,
    tick_ns: u64,
    backpressure_wait_ms: u64,
    ring_capacity: usize,
    /// Global node id → owning shard.
    shard_map: Arc<Vec<u32>>,
}

fn rearm<P>(
    node: &ShardNode<P>,
    i: usize,
    tick_ns: u64,
    wheel: &mut ShardWheel,
    next_wake: &mut [Option<u64>],
) where
    P: Protocol,
    P::Msg: WireMsg,
{
    if let Some(at) = node.earliest_deadline_ns() {
        let tick = at.div_ceil(tick_ns);
        if next_wake[i].is_none_or(|armed| tick < armed) {
            wheel.schedule(tick, i as u32);
            next_wake[i] = Some(tick);
        }
    }
}

/// Route everything a node call emitted: same-shard envelopes to the
/// local queue, cross-shard ones into the per-pair batch (splitting
/// batches that would exceed a UDP datagram into `ready`).
fn route_sends(
    wire: &mut WireOut,
    env: &WorkerEnv,
    udp: bool,
    local_q: &mut VecDeque<(NodeId, Vec<u8>)>,
    out_bufs: &mut [Vec<u8>],
    ready: &mut Vec<(usize, Vec<u8>)>,
) {
    for (to, envelope) in wire.sends.drain(..) {
        let s = env.shard_map[to.0 as usize] as usize;
        if s == env.shard as usize {
            local_q.push_back((to, envelope));
        } else {
            if udp
                && batch_count(&out_bufs[s]) > 0
                && out_bufs[s].len() + 8 + envelope.len() > UDP_BATCH_LIMIT
            {
                let full = std::mem::replace(&mut out_bufs[s], batch_begin(env.shard));
                ready.push((s, full));
            }
            batch_push(&mut out_bufs[s], to, &envelope);
        }
    }
}

/// Push one sealed batch into a ring, parking briefly under
/// backpressure and aborting when the budget runs out.
fn push_with_backpressure(
    tx: &RingSender<Vec<u8>>,
    mut buf: Vec<u8>,
    env: &WorkerEnv,
    to_shard: usize,
    shared: &ShardShared,
) -> Result<(), ShardAbort> {
    let deadline = Instant::now() + Duration::from_millis(env.backpressure_wait_ms);
    loop {
        match tx.try_push(buf) {
            Ok(()) => {
                shared.wake(to_shard);
                return Ok(());
            }
            Err(back) => {
                buf = back;
                if shared.stop.load(Ordering::Relaxed) {
                    // The run is already winding down; drop the batch.
                    return Ok(());
                }
                if Instant::now() >= deadline {
                    return Err(ShardAbort::RingBackpressure {
                        from_shard: env.shard,
                        to_shard: to_shard as u32,
                        capacity: env.ring_capacity,
                    });
                }
                thread::park_timeout(Duration::from_micros(100));
            }
        }
    }
}

/// Seal and transmit every non-empty batch.
fn flush_batches(
    wire: &mut WireOut,
    env: &WorkerEnv,
    links: &mut Links,
    out_bufs: &mut [Vec<u8>],
    ready: &mut Vec<(usize, Vec<u8>)>,
    shared: &ShardShared,
) -> Result<(), ShardAbort> {
    for (s, buf) in out_bufs.iter_mut().enumerate() {
        if s != env.shard as usize && batch_count(buf) > 0 {
            let full = std::mem::replace(buf, batch_begin(env.shard));
            ready.push((s, full));
        }
    }
    for (s, mut buf) in ready.drain(..) {
        batch_seal(&mut buf, wire.clock.current());
        match links {
            Links::Rings { tx, .. } => {
                let tx = tx[s].as_ref().expect("ring to a peer shard");
                push_with_backpressure(tx, buf, env, s, shared)?;
            }
            Links::Udp { socket, peers } => {
                if socket.send_to(&buf, peers[s]).is_err() {
                    shared
                        .send_failures
                        .fetch_add(batch_count(&buf) as u64, Ordering::Relaxed);
                }
            }
        }
    }
    Ok(())
}

fn worker_main<P>(
    env: WorkerEnv,
    mut nodes: Vec<ShardNode<P>>,
    mut links: Links,
    ctrl: Receiver<WorkerMsg>,
    shared: Arc<ShardShared>,
) -> Vec<StampedRecord>
where
    P: Protocol,
    P::Msg: WireMsg,
{
    let udp = matches!(links, Links::Udp { .. });
    let mut wire = WireOut::new();
    let mut wheel = ShardWheel::new(1024);
    let mut next_wake: Vec<Option<u64>> = vec![None; nodes.len()];
    let mut local_q: VecDeque<(NodeId, Vec<u8>)> = VecDeque::new();
    let mut out_bufs: Vec<Vec<u8>> = (0..env.workers).map(|_| batch_begin(env.shard)).collect();
    let mut ready: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut inbound: Vec<Vec<u8>> = Vec::new();
    let mut due: Vec<u32> = Vec::new();
    let mut rx_buf = vec![0u8; 65_535];

    for (i, node) in nodes.iter().enumerate() {
        rearm(node, i, env.tick_ns, &mut wheel, &mut next_wake);
    }

    'run: loop {
        let mut busy = false;

        // 1. Control plane.
        loop {
            match ctrl.try_recv() {
                Ok(WorkerMsg::Node { clock, node, ctrl }) => {
                    busy = true;
                    wire.clock.witness(clock);
                    let i = (node.0 - env.base) as usize;
                    nodes[i].handle_ctrl(ctrl, &mut wire, &shared);
                    rearm(&nodes[i], i, env.tick_ns, &mut wheel, &mut next_wake);
                    route_sends(
                        &mut wire,
                        &env,
                        udp,
                        &mut local_q,
                        &mut out_bufs,
                        &mut ready,
                    );
                }
                Ok(WorkerMsg::Shutdown { clock }) => {
                    wire.clock.witness(clock);
                    for node in &mut nodes {
                        node.emit_net_stats(&mut wire, &shared);
                    }
                    break 'run;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'run,
            }
        }

        // 2. Inbound cross-shard batches.
        inbound.clear();
        match &mut links {
            Links::Rings { rx, .. } => {
                for r in rx.iter().flatten() {
                    while let Some(buf) = r.try_pop() {
                        inbound.push(buf);
                    }
                }
            }
            Links::Udp { socket, .. } => {
                while let Ok((len, _)) = socket.recv_from(&mut rx_buf) {
                    inbound.push(rx_buf[..len].to_vec());
                }
            }
        }
        for buf in inbound.drain(..) {
            busy = true;
            match batch_decode(&buf) {
                Some((_, clock, envelopes)) => {
                    wire.clock.witness(clock);
                    for (to, envelope) in envelopes {
                        let i = to.0.wrapping_sub(env.base) as usize;
                        if i < nodes.len() {
                            nodes[i].on_envelope(envelope, &mut wire, &shared);
                            rearm(&nodes[i], i, env.tick_ns, &mut wheel, &mut next_wake);
                        }
                    }
                }
                None => {
                    shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            route_sends(
                &mut wire,
                &env,
                udp,
                &mut local_q,
                &mut out_bufs,
                &mut ready,
            );
        }

        // 3. Same-shard deliveries (chains drain within the pass).
        while let Some((to, envelope)) = local_q.pop_front() {
            busy = true;
            let i = (to.0 - env.base) as usize;
            nodes[i].on_envelope(&envelope, &mut wire, &shared);
            rearm(&nodes[i], i, env.tick_ns, &mut wheel, &mut next_wake);
            route_sends(
                &mut wire,
                &env,
                udp,
                &mut local_q,
                &mut out_bufs,
                &mut ready,
            );
        }

        // 4. Due wakeups from the wheel.
        let now_tick = shared.now_ns() / env.tick_ns;
        due.clear();
        wheel.advance(now_tick, &mut due);
        for &i in &due {
            let i = i as usize;
            next_wake[i] = None;
            nodes[i].tick(&mut wire, &shared);
            rearm(&nodes[i], i, env.tick_ns, &mut wheel, &mut next_wake);
            route_sends(
                &mut wire,
                &env,
                udp,
                &mut local_q,
                &mut out_bufs,
                &mut ready,
            );
            busy = true;
        }
        // Wakeups can enqueue same-shard traffic; drain it now rather
        // than sleeping on it.
        while let Some((to, envelope)) = local_q.pop_front() {
            let i = (to.0 - env.base) as usize;
            nodes[i].on_envelope(&envelope, &mut wire, &shared);
            rearm(&nodes[i], i, env.tick_ns, &mut wheel, &mut next_wake);
            route_sends(
                &mut wire,
                &env,
                udp,
                &mut local_q,
                &mut out_bufs,
                &mut ready,
            );
        }

        // 5. Flush cross-shard batches (one buffer per shard pair).
        if let Err(abort) = flush_batches(
            &mut wire,
            &env,
            &mut links,
            &mut out_bufs,
            &mut ready,
            &shared,
        ) {
            *shared.abort.lock().expect("abort slot") = Some(abort);
            shared.stop.store(true, Ordering::Relaxed);
            break 'run;
        }

        if shared.stop.load(Ordering::Relaxed) {
            // Another thread aborted; the driver's shutdown follows, but
            // stop ticking nodes in the meantime.
            thread::park_timeout(Duration::from_millis(1));
            continue;
        }

        // 6. Sleep until the next deadline (or an unpark).
        if !busy {
            let now_ns = shared.now_ns();
            let sleep_ns = wheel
                .next_deadline()
                .map(|t| t.saturating_mul(env.tick_ns).saturating_sub(now_ns))
                .unwrap_or(1_000_000)
                .clamp(50_000, 1_000_000);
            thread::park_timeout(Duration::from_nanos(sleep_ns));
        }
    }
    wire.records
}

/// Resolve the worker-pool size: explicit, or the host parallelism
/// (min 2 so cross-shard machinery is always exercised), capped at n.
fn resolve_workers(cfg: &LiveConfig, n: usize) -> usize {
    let requested = match cfg.runtime {
        LiveRuntime::Sharded { workers } => workers,
        LiveRuntime::ThreadPerNode => 0,
    };
    let w = if requested == 0 {
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(2, 16)
    } else {
        requested
    };
    w.min(n.max(1))
}

/// Run one sharded live execution and validate its merged trace.
///
/// Mirrors `run_live_with`: same driver action timeline, same mirror
/// `World`, same outcome shape. The factory runs on the calling thread
/// (it need not be `Send`); the built automata are shipped to workers.
pub(crate) fn run_sharded_with<P, F>(
    cfg: &LiveConfig,
    mut factory: F,
    tuning: ShardTuning,
) -> Result<LiveOutcome, String>
where
    P: Protocol + Send + 'static,
    P::Msg: WireMsg + Send,
    F: FnMut(&NodeSeed) -> P,
{
    let n = cfg.positions.len();
    let radio_range = SimConfig::default().radio_range;
    let mut world = World::new(
        radio_range,
        cfg.positions.iter().map(|&p| p.into()).collect(),
    );
    let max_degree = world.max_degree();
    let workers = resolve_workers(cfg, n);

    // Contiguous shard ranges: the first `n % workers` shards get one
    // extra node.
    let base_size = n / workers;
    let remainder = n % workers;
    let mut starts: Vec<usize> = Vec::with_capacity(workers + 1);
    let mut acc = 0;
    for s in 0..workers {
        starts.push(acc);
        acc += base_size + usize::from(s < remainder);
    }
    starts.push(acc);
    let mut shard_map: Vec<u32> = vec![0; n];
    for s in 0..workers {
        for item in shard_map.iter_mut().take(starts[s + 1]).skip(starts[s]) {
            *item = s as u32;
        }
    }
    let shard_map = Arc::new(shard_map);

    let needs_gate = cfg.crash.is_some() || cfg.partition.is_some();
    let shared = Arc::new(ShardShared {
        origin: Instant::now(),
        gate: needs_gate.then(|| LinkGate::new(n)),
        sent: AtomicU64::new(0),
        delivered: AtomicU64::new(0),
        decode_errors: AtomicU64::new(0),
        send_failures: AtomicU64::new(0),
        ate: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        abort: Mutex::new(None),
        wakers: OnceLock::new(),
    });

    // Transport endpoints: a ring matrix in-process, a socket per shard
    // on UDP.
    let mut links: Vec<Option<Links>> = match cfg.transport {
        TransportKind::Mpsc => {
            let mut txs: Vec<Vec<Option<RingSender<Vec<u8>>>>> = (0..workers)
                .map(|_| (0..workers).map(|_| None).collect())
                .collect();
            let mut rxs: Vec<Vec<Option<RingReceiver<Vec<u8>>>>> = (0..workers)
                .map(|_| (0..workers).map(|_| None).collect())
                .collect();
            for a in 0..workers {
                for b in 0..workers {
                    if a != b {
                        let (tx, rx) = ring(tuning.ring_capacity);
                        txs[a][b] = Some(tx);
                        rxs[b][a] = Some(rx);
                    }
                }
            }
            txs.into_iter()
                .zip(rxs)
                .map(|(tx, rx)| Some(Links::Rings { rx, tx }))
                .collect()
        }
        TransportKind::Udp => {
            let mut sockets = Vec::with_capacity(workers);
            let mut addrs = Vec::with_capacity(workers);
            for s in 0..workers {
                let socket = UdpSocket::bind("127.0.0.1:0")
                    .map_err(|e| format!("failed to bind shard {s} socket: {e}"))?;
                socket
                    .set_nonblocking(true)
                    .map_err(|e| format!("failed to set shard {s} socket nonblocking: {e}"))?;
                addrs.push(
                    socket
                        .local_addr()
                        .map_err(|e| format!("failed to read shard {s} socket addr: {e}"))?,
                );
                sockets.push(socket);
            }
            sockets
                .into_iter()
                .map(|socket| {
                    Some(Links::Udp {
                        socket,
                        peers: addrs.clone(),
                    })
                })
                .collect()
        }
    };

    // Build every automaton (and the recovery spare) on this thread —
    // the factory is not shared with workers.
    let mut ctrls: Vec<Sender<WorkerMsg>> = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for s in 0..workers {
        let mut nodes = Vec::with_capacity(starts[s + 1] - starts[s]);
        for i in starts[s]..starts[s + 1] {
            let me = NodeId(i as u32);
            let seed = NodeSeed {
                id: me,
                neighbors: world.neighbors(me).to_vec(),
                n_nodes: n,
                max_degree,
            };
            let proto = factory(&seed);
            let spare = match cfg.recover {
                Some((victim, _)) if victim as usize == i => Some(factory(&NodeSeed {
                    id: me,
                    neighbors: Vec::new(),
                    n_nodes: n,
                    max_degree,
                })),
                _ => None,
            };
            nodes.push(ShardNode::new(
                me,
                proto,
                spare,
                seed.neighbors,
                cfg.seed,
                cfg.tick_ns,
                cfg.rate,
                cfg.eat_ms.saturating_mul(1_000_000),
                cfg.one_shot,
                cfg.closed_loop,
                shared.now_ns(),
            ));
        }
        let env = WorkerEnv {
            shard: s as u32,
            base: starts[s] as u32,
            workers,
            tick_ns: cfg.tick_ns,
            backpressure_wait_ms: tuning.backpressure_wait_ms,
            ring_capacity: tuning.ring_capacity,
            shard_map: shard_map.clone(),
        };
        let my_links = links[s].take().expect("links built per shard");
        let (ctx, crx) = channel::<WorkerMsg>();
        ctrls.push(ctx);
        let sh = shared.clone();
        handles.push(
            thread::Builder::new()
                .name(format!("lme-shard-{s}"))
                .spawn(move || worker_main(env, nodes, my_links, crx, sh))
                .map_err(|e| format!("failed to spawn shard worker {s}: {e}"))?,
        );
    }
    let _ = shared
        .wakers
        .set(handles.iter().map(|h| h.thread().clone()).collect());

    // The driver: its own clock and record stream (merged as the last
    // input), the same action timeline as the thread-per-node runtime.
    let mut clock = HybridClock::new();
    let mut drv_records: Vec<StampedRecord> = Vec::new();
    let tick_ns = cfg.tick_ns;
    let send_ctrl = |ctrls: &[Sender<WorkerMsg>], clock: &HybridClock, node: NodeId, ctrl: Ctrl| {
        let s = shard_map[node.index()] as usize;
        let _ = ctrls[s].send(WorkerMsg::Node {
            clock: clock.current(),
            node,
            ctrl,
        });
        shared.wake(s);
    };

    use crate::runtime::Action;
    let mut actions: Vec<(u64, Action)> = Vec::new();
    if let Some((victim, at_ms)) = cfg.crash {
        actions.push((at_ms * 1_000_000, Action::Crash(NodeId(victim))));
    }
    if let Some((node, at_ms)) = cfg.recover {
        actions.push((at_ms * 1_000_000, Action::Recover(NodeId(node))));
    }
    if let Some((_, at_ms, heal_ms)) = &cfg.partition {
        actions.push((at_ms * 1_000_000, Action::PartitionStart));
        actions.push((heal_ms * 1_000_000, Action::PartitionEnd));
    }
    for &(at_ms, node, dest) in &cfg.moves {
        actions.push((at_ms * 1_000_000, Action::Move(NodeId(node), dest.into())));
    }
    actions.sort_by_key(|&(at, _)| at);
    let cut_pairs: Vec<(NodeId, NodeId)> = match &cfg.partition {
        Some((side, _, _)) => {
            let inside: Vec<bool> = {
                let mut v = vec![false; n];
                for &m in side {
                    v[m as usize] = true;
                }
                v
            };
            (0..n as u32)
                .flat_map(|a| (0..n as u32).map(move |b| (NodeId(a), NodeId(b))))
                .filter(|&(a, b)| a < b && inside[a.index()] != inside[b.index()])
                .collect()
        }
        None => Vec::new(),
    };

    let deadline_ns = cfg.duration_ms.saturating_mul(1_000_000);
    let mut ai = 0;
    let mut quiesce_at: Option<u64> = None;
    let mut recoveries: u64 = 0;
    let mut partition_active = false;
    loop {
        let now = shared.now_ns();
        while ai < actions.len() && actions[ai].0 <= now {
            let (_, action) = &actions[ai];
            ai += 1;
            match action {
                Action::Crash(victim) => {
                    if let Some(gate) = &shared.gate {
                        gate.sever_all(*victim);
                    }
                    world.mark_crashed(*victim);
                    send_ctrl(&ctrls, &clock, *victim, Ctrl::Crash);
                }
                Action::Recover(node) => {
                    let node = *node;
                    if !world.is_crashed(node) {
                        continue;
                    }
                    world.mark_recovered(node);
                    if let Some(gate) = &shared.gate {
                        for i in 0..n as u32 {
                            let peer = NodeId(i);
                            if peer == node || world.is_crashed(peer) {
                                continue;
                            }
                            let cut = partition_active
                                && cut_pairs.iter().any(|&(a, b)| {
                                    (a, b) == (node, peer) || (a, b) == (peer, node)
                                });
                            if !cut {
                                gate.set_pair(node, peer, false);
                            }
                        }
                    }
                    send_ctrl(&ctrls, &clock, node, Ctrl::Recover);
                    for &peer in world.neighbors(node) {
                        if world.is_crashed(peer) {
                            continue;
                        }
                        let at_ns = shared.now_ns();
                        drv_records.push(StampedRecord {
                            clock: clock.stamp(at_ns / tick_ns),
                            at_ns,
                            kind: LiveEventKind::LinkDown { a: node, b: peer },
                        });
                        send_ctrl(&ctrls, &clock, peer, Ctrl::LinkDown { peer: node });
                        let at_ns = shared.now_ns();
                        drv_records.push(StampedRecord {
                            clock: clock.stamp(at_ns / tick_ns),
                            at_ns,
                            kind: LiveEventKind::LinkUp { a: peer, b: node },
                        });
                        send_ctrl(
                            &ctrls,
                            &clock,
                            peer,
                            Ctrl::LinkUp {
                                peer: node,
                                kind: LinkUpKind::AsStatic,
                            },
                        );
                        send_ctrl(
                            &ctrls,
                            &clock,
                            node,
                            Ctrl::LinkUp {
                                peer,
                                kind: LinkUpKind::AsMoving,
                            },
                        );
                    }
                    recoveries += 1;
                }
                Action::PartitionStart => {
                    partition_active = true;
                    if let Some(gate) = &shared.gate {
                        for &(a, b) in &cut_pairs {
                            gate.set_pair(a, b, true);
                        }
                    }
                }
                Action::PartitionEnd => {
                    partition_active = false;
                    if let Some(gate) = &shared.gate {
                        for &(a, b) in &cut_pairs {
                            if !world.is_crashed(a) && !world.is_crashed(b) {
                                gate.set_pair(a, b, false);
                            }
                        }
                    }
                }
                Action::Move(m, dest) => {
                    if world.is_crashed(*m) {
                        continue;
                    }
                    let at_ns = shared.now_ns();
                    drv_records.push(StampedRecord {
                        clock: clock.stamp(at_ns / tick_ns),
                        at_ns,
                        kind: LiveEventKind::Relocate {
                            node: *m,
                            x: dest.x,
                            y: dest.y,
                        },
                    });
                    send_ctrl(&ctrls, &clock, *m, Ctrl::MoveStarted);
                    for change in world.relocate(*m, *dest) {
                        match change {
                            LinkChange::Up(a, b) => {
                                let (stat, mov) = if a == *m { (b, a) } else { (a, b) };
                                let at_ns = shared.now_ns();
                                drv_records.push(StampedRecord {
                                    clock: clock.stamp(at_ns / tick_ns),
                                    at_ns,
                                    kind: LiveEventKind::LinkUp { a: stat, b: mov },
                                });
                                send_ctrl(
                                    &ctrls,
                                    &clock,
                                    stat,
                                    Ctrl::LinkUp {
                                        peer: mov,
                                        kind: LinkUpKind::AsStatic,
                                    },
                                );
                                send_ctrl(
                                    &ctrls,
                                    &clock,
                                    mov,
                                    Ctrl::LinkUp {
                                        peer: stat,
                                        kind: LinkUpKind::AsMoving,
                                    },
                                );
                            }
                            LinkChange::Down(a, b) => {
                                let at_ns = shared.now_ns();
                                drv_records.push(StampedRecord {
                                    clock: clock.stamp(at_ns / tick_ns),
                                    at_ns,
                                    kind: LiveEventKind::LinkDown { a, b },
                                });
                                send_ctrl(&ctrls, &clock, a, Ctrl::LinkDown { peer: b });
                                send_ctrl(&ctrls, &clock, b, Ctrl::LinkDown { peer: a });
                            }
                        }
                    }
                    send_ctrl(&ctrls, &clock, *m, Ctrl::MoveEnded);
                }
            }
        }
        if now >= deadline_ns || shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if cfg.one_shot && cfg.crash.is_none() && shared.ate.load(Ordering::Relaxed) as usize >= n {
            let at = *quiesce_at.get_or_insert(now + 50_000_000);
            if now >= at {
                break;
            }
        }
        let next_action = actions
            .get(ai)
            .map(|&(at, _)| at)
            .unwrap_or(u64::MAX)
            .min(deadline_ns);
        let wait_ns = next_action
            .saturating_sub(shared.now_ns())
            .clamp(1_000_000, 5_000_000);
        thread::sleep(Duration::from_nanos(wait_ns));
    }

    for (s, c) in ctrls.iter().enumerate() {
        let _ = c.send(WorkerMsg::Shutdown {
            clock: clock.current(),
        });
        shared.wake(s);
    }
    let mut streams: Vec<Vec<StampedRecord>> = Vec::with_capacity(workers + 1);
    let mut threads_joined = 0;
    for (s, h) in handles.into_iter().enumerate() {
        let recs = h
            .join()
            .map_err(|_| format!("shard worker {s} panicked during the live run"))?;
        threads_joined += starts[s + 1] - starts[s];
        streams.push(recs);
    }
    if let Some(abort) = shared.abort.lock().expect("abort slot").take() {
        return Err(format!("sharded runtime aborted: {abort}"));
    }
    streams.push(drv_records);
    let elapsed_ms = shared.now_ns() / 1_000_000;

    let trace = LiveTrace::new(merge_stamped(streams));
    let violations = trace.check_safety(radio_range, &cfg.positions);
    let meals = trace.census(n);
    let latencies_ns = trace.hungry_to_eat_latencies_ns(n);
    Ok(LiveOutcome {
        trace,
        meals,
        latencies_ns,
        violations,
        messages_sent: shared.sent.load(Ordering::Relaxed),
        messages_delivered: shared.delivered.load(Ordering::Relaxed),
        decode_errors: shared.decode_errors.load(Ordering::Relaxed),
        send_failures: shared.send_failures.load(Ordering::Relaxed),
        retransmissions: 0,
        acks_sent: 0,
        recoveries,
        elapsed_ms,
        threads_joined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::LiveAlg;
    use local_mutex::Algorithm2;

    fn clique4() -> Vec<(f64, f64)> {
        vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
    }

    fn sharded_cfg() -> LiveConfig {
        let mut cfg = LiveConfig::new(LiveAlg::A2, TransportKind::Mpsc, clique4());
        cfg.runtime = LiveRuntime::Sharded { workers: 2 };
        cfg.duration_ms = 300;
        cfg.rate = 60.0;
        cfg.eat_ms = 1;
        cfg
    }

    #[test]
    fn sharded_mpsc_run_is_safe_with_a_dense_merged_order() {
        let cfg = sharded_cfg();
        let out =
            run_sharded_with(&cfg, Algorithm2::new, ShardTuning::default()).expect("sharded run");
        assert_eq!(out.threads_joined, 4);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.total_meals() > 0, "nobody ate in 300 ms");
        assert_eq!(out.decode_errors, 0);
        assert!(out.messages_delivered > 0);
        for (i, r) in out.trace.records().iter().enumerate() {
            assert_eq!(r.order, i as u64, "merged ticket order must be dense");
        }
    }

    #[test]
    fn exhausted_ring_backpressure_is_a_structured_abort() {
        let cfg = sharded_cfg();
        let tuning = ShardTuning {
            ring_capacity: 0,
            backpressure_wait_ms: 0,
        };
        let err = run_sharded_with(&cfg, Algorithm2::new, tuning)
            .expect_err("zero-capacity rings must abort");
        assert!(
            err.contains("backpressure") && err.contains("ring"),
            "unexpected abort message: {err}"
        );
    }

    #[test]
    fn abort_display_mirrors_the_run_abort_style() {
        let a = ShardAbort::RingBackpressure {
            from_shard: 1,
            to_shard: 3,
            capacity: 64,
        };
        let s = a.to_string();
        assert!(s.contains("1->3") && s.contains("64"), "{s}");
    }
}
