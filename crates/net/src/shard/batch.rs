//! The cross-shard batch frame: one buffer per shard pair per flush
//! instead of one transport write per message.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [from_shard u32][clock u64][count u32]
//! count × ( [to u32][len u32][envelope bytes] )
//! ```
//!
//! The `clock` is the sending shard's hybrid-clock stamp at seal time —
//! it is `witness`ed by the receiver before any contained envelope is
//! processed, which is what makes cross-shard deliveries causally later
//! than the records the sender took before transmitting. The same bytes
//! ride a ring slot on the in-process transport and a datagram on UDP.

use manet_sim::NodeId;

/// Fixed header size in bytes.
pub(crate) const BATCH_HEADER: usize = 16;

/// Start a batch buffer for `from_shard` with a zero clock and count.
pub(crate) fn batch_begin(from_shard: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(&from_shard.to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf
}

/// Append one envelope addressed to `to`.
pub(crate) fn batch_push(buf: &mut Vec<u8>, to: NodeId, envelope: &[u8]) {
    buf.extend_from_slice(&to.0.to_le_bytes());
    buf.extend_from_slice(&(envelope.len() as u32).to_le_bytes());
    buf.extend_from_slice(envelope);
    let count = batch_count(buf) + 1;
    buf[12..16].copy_from_slice(&count.to_le_bytes());
}

/// How many envelopes the batch carries.
pub(crate) fn batch_count(buf: &[u8]) -> u32 {
    u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]])
}

/// Seal the batch with the sender's current clock stamp.
pub(crate) fn batch_seal(buf: &mut [u8], clock: u64) {
    buf[4..12].copy_from_slice(&clock.to_le_bytes());
}

/// A decoded batch: the sending shard, its sealed clock stamp, and the
/// addressed envelopes in send order.
pub(crate) type DecodedBatch<'a> = (u32, u64, Vec<(NodeId, &'a [u8])>);

/// Decode a batch into `(from_shard, clock, envelopes)`; `None` on any
/// malformed framing (short header, truncated entry, count mismatch).
pub(crate) fn batch_decode(buf: &[u8]) -> Option<DecodedBatch<'_>> {
    if buf.len() < BATCH_HEADER {
        return None;
    }
    let from_shard = u32::from_le_bytes(buf[0..4].try_into().ok()?);
    let clock = u64::from_le_bytes(buf[4..12].try_into().ok()?);
    let count = u32::from_le_bytes(buf[12..16].try_into().ok()?) as usize;
    let mut envelopes = Vec::with_capacity(count);
    let mut at = BATCH_HEADER;
    for _ in 0..count {
        if buf.len() < at + 8 {
            return None;
        }
        let to = u32::from_le_bytes(buf[at..at + 4].try_into().ok()?);
        let len = u32::from_le_bytes(buf[at + 4..at + 8].try_into().ok()?) as usize;
        at += 8;
        if buf.len() < at + len {
            return None;
        }
        envelopes.push((NodeId(to), &buf[at..at + len]));
        at += len;
    }
    if at != buf.len() {
        return None;
    }
    Some((from_shard, clock, envelopes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_order_clock_and_payloads() {
        let mut buf = batch_begin(3);
        batch_push(&mut buf, NodeId(7), b"alpha");
        batch_push(&mut buf, NodeId(9), b"");
        batch_push(&mut buf, NodeId(7), b"bravo");
        batch_seal(&mut buf, 0xDEAD_BEEF);
        assert_eq!(batch_count(&buf), 3);
        let (from, clock, envs) = batch_decode(&buf).expect("well-formed batch");
        assert_eq!(from, 3);
        assert_eq!(clock, 0xDEAD_BEEF);
        assert_eq!(
            envs,
            vec![
                (NodeId(7), b"alpha".as_slice()),
                (NodeId(9), b"".as_slice()),
                (NodeId(7), b"bravo".as_slice()),
            ]
        );
    }

    #[test]
    fn truncations_never_decode() {
        let mut buf = batch_begin(0);
        batch_push(&mut buf, NodeId(1), b"payload");
        batch_seal(&mut buf, 42);
        for cut in 0..buf.len() {
            assert!(batch_decode(&buf[..cut]).is_none(), "cut at {cut}");
        }
        assert!(batch_decode(&buf).is_some());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = batch_begin(0);
        batch_push(&mut buf, NodeId(1), b"x");
        batch_seal(&mut buf, 1);
        buf.push(0);
        assert!(batch_decode(&buf).is_none());
    }
}
