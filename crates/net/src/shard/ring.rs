//! Bounded SPSC rings for cross-shard batch delivery.
//!
//! One ring per ordered shard pair: the owning worker is the only
//! producer and the peer worker the only consumer, so a fixed slot array
//! with one atomic flag per slot suffices — no locks are contended in
//! the steady state (each `Mutex` below is only ever taken by the one
//! side that owns the slot at that moment; it exists to move the value
//! without `unsafe` under the workspace-wide `forbid(unsafe_code)`).
//!
//! The ring is deliberately *bounded*: a slow consumer exerts
//! backpressure on the producer, which retries briefly and then surfaces
//! a structured [`super::ShardAbort::RingBackpressure`] instead of
//! buffering without limit — mirroring the simulator's
//! `RunAbort::ChannelQueueOverflow` philosophy.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct RingShared<T> {
    slots: Vec<Mutex<Option<T>>>,
    full: Vec<AtomicBool>,
    head: AtomicUsize,
    tail: AtomicUsize,
}

/// The producer half of a bounded SPSC ring.
pub(crate) struct RingSender<T> {
    inner: Arc<RingShared<T>>,
}

/// The consumer half of a bounded SPSC ring.
pub(crate) struct RingReceiver<T> {
    inner: Arc<RingShared<T>>,
}

/// Build a bounded SPSC ring with `capacity` slots. A capacity of zero
/// is legal and always full (useful to force the backpressure path in
/// tests).
pub(crate) fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let inner = Arc::new(RingShared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        full: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        RingSender {
            inner: inner.clone(),
        },
        RingReceiver { inner },
    )
}

impl<T> RingSender<T> {
    /// Push a value, or hand it back when the ring is full.
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        let inner = &self.inner;
        let cap = inner.slots.len();
        if cap == 0 {
            return Err(value);
        }
        let t = inner.tail.load(Ordering::Relaxed);
        let slot = t % cap;
        if inner.full[slot].load(Ordering::Acquire) {
            return Err(value);
        }
        *inner.slots[slot].lock().expect("ring slot poisoned") = Some(value);
        inner.full[slot].store(true, Ordering::Release);
        inner.tail.store(t.wrapping_add(1), Ordering::Relaxed);
        Ok(())
    }
}

impl<T> RingReceiver<T> {
    /// Pop the oldest value, if any.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let inner = &self.inner;
        let cap = inner.slots.len();
        if cap == 0 {
            return None;
        }
        let h = inner.head.load(Ordering::Relaxed);
        let slot = h % cap;
        if !inner.full[slot].load(Ordering::Acquire) {
            return None;
        }
        let value = inner.slots[slot].lock().expect("ring slot poisoned").take();
        inner.full[slot].store(false, Ordering::Release);
        inner.head.store(h.wrapping_add(1), Ordering::Relaxed);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_bounded_capacity() {
        let (tx, rx) = ring::<u32>(3);
        assert!(rx.try_pop().is_none());
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert!(tx.try_push(3).is_ok());
        assert_eq!(tx.try_push(4), Err(4), "ring must be full");
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(4).is_ok(), "slot freed by the pop");
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), Some(4));
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn zero_capacity_is_always_full() {
        let (tx, rx) = ring::<u8>(0);
        assert_eq!(tx.try_push(9), Err(9));
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn cross_thread_handoff_delivers_everything_in_order() {
        let (tx, rx) = ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                let mut v = i;
                loop {
                    match tx.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < 10_000 {
            if let Some(v) = rx.try_pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().expect("producer");
    }
}
