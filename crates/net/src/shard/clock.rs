//! Per-shard trace clocks and the ticket-range merge.
//!
//! The thread-per-node runtime totally orders its trace with one shared
//! `AtomicU64` ticket counter — every observable event, on every thread,
//! pays one contended RMW. The sharded runtime replaces it with a hybrid
//! logical clock per shard: stamping advances the clock to
//! `max(last + 1, wall_tick)`, and every cross-shard batch carries the
//! sender's clock so the receiver can merge it in before processing.
//! That gives each shard a strictly increasing private ticket range whose
//! stamps respect causality across shards: any record that can see the
//! effect of another (a delivery after a send, a rejoin after a crash)
//! carries a strictly larger stamp.
//!
//! At export the per-shard streams are k-way merged by `(clock, shard)`
//! into one dense total order — `order = 0, 1, 2, …` — which is exactly
//! the shape [`crate::trace::LiveTrace`] and the safety monitor expect.
//! See DESIGN.md §15 for what this order gives up versus the global
//! counter (wall-time placement of *concurrent* records) and why the
//! safety verdict does not depend on it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::trace::{LiveEventKind, LiveRecord};

/// A hybrid logical clock: one per shard (and one for the driver).
///
/// Stamps are strictly increasing locally, never behind the wall-clock
/// tick, and — via [`HybridClock::witness`] on received batches — strictly
/// above every stamp the shard has causally observed.
#[derive(Debug, Default)]
pub struct HybridClock {
    last: u64,
}

impl HybridClock {
    /// A clock at zero.
    pub fn new() -> HybridClock {
        HybridClock { last: 0 }
    }

    /// Take the next stamp: `max(last + 1, now_tick)`.
    pub fn stamp(&mut self, now_tick: u64) -> u64 {
        self.last = (self.last + 1).max(now_tick);
        self.last
    }

    /// Merge in a stamp observed from another shard; later local stamps
    /// will strictly exceed it.
    pub fn witness(&mut self, remote: u64) {
        self.last = self.last.max(remote);
    }

    /// The latest stamp issued or witnessed (0 if none).
    pub fn current(&self) -> u64 {
        self.last
    }
}

/// One trace record carrying its shard-clock stamp instead of a global
/// ticket; [`merge_stamped`] turns streams of these into ticketed
/// [`LiveRecord`]s.
#[derive(Debug, Clone)]
pub struct StampedRecord {
    /// The hybrid-clock stamp under which the record was taken.
    pub clock: u64,
    /// Wall nanoseconds since the run origin.
    pub at_ns: u64,
    /// What happened.
    pub kind: LiveEventKind,
}

/// K-way merge the per-shard record streams into one dense total order.
///
/// Each input stream must be non-decreasing in `clock` (the per-shard
/// clocks guarantee strictly increasing stamps). The merge orders by
/// `(clock, stream index)` — ties across shards are concurrent records,
/// so any deterministic tie-break yields a valid linearization — and
/// assigns `order = 0, 1, 2, …` with no ticket reused or skipped.
pub fn merge_stamped(streams: Vec<Vec<StampedRecord>>) -> Vec<LiveRecord> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of Reverse((clock, stream, position)): pop order is the merged
    // order; per-stream positions only move forward, preserving each
    // shard's internal sequence even if its stamps were (unexpectedly)
    // non-monotonic.
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (s, stream) in streams.iter().enumerate() {
        if let Some(first) = stream.first() {
            heap.push(Reverse((first.clock, s, 0)));
        }
    }
    while let Some(Reverse((_, s, i))) = heap.pop() {
        let rec = &streams[s][i];
        out.push(LiveRecord {
            at_ns: rec.at_ns,
            order: out.len() as u64,
            kind: rec.kind.clone(),
        });
        if let Some(next) = streams[s].get(i + 1) {
            heap.push(Reverse((next.clock.max(rec.clock), s, i + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::NodeId;

    fn rec(clock: u64, node: u32) -> StampedRecord {
        StampedRecord {
            clock,
            at_ns: clock * 7,
            kind: LiveEventKind::Crash { node: NodeId(node) },
        }
    }

    fn node_of(r: &LiveRecord) -> u32 {
        match r.kind {
            LiveEventKind::Crash { node } => node.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn stamps_are_strictly_increasing_and_never_behind_the_wall_tick() {
        let mut c = HybridClock::new();
        assert_eq!(c.stamp(0), 1);
        assert_eq!(c.stamp(0), 2);
        assert_eq!(c.stamp(100), 100);
        assert_eq!(c.stamp(100), 101);
        c.witness(500);
        assert_eq!(c.stamp(100), 501);
    }

    #[test]
    fn merge_is_dense_and_preserves_per_stream_order() {
        let a = vec![rec(1, 0), rec(4, 1), rec(9, 2)];
        let b = vec![rec(2, 10), rec(3, 11), rec(9, 12)];
        let merged = merge_stamped(vec![a, b]);
        assert_eq!(merged.len(), 6);
        for (i, r) in merged.iter().enumerate() {
            assert_eq!(r.order, i as u64, "dense ticket order");
        }
        let ids: Vec<u32> = merged.iter().map(node_of).collect();
        // Clock order with stream 0 winning the tie at clock 9.
        assert_eq!(ids, vec![0, 10, 11, 1, 2, 12]);
    }

    #[test]
    fn merge_of_empty_streams_is_empty() {
        assert!(merge_stamped(vec![Vec::new(), Vec::new()]).is_empty());
        assert!(merge_stamped(Vec::new()).is_empty());
    }
}
