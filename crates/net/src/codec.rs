//! The hand-rolled wire codec.
//!
//! Every protocol message that crosses a live transport travels in one
//! *frame*:
//!
//! ```text
//! ┌────────────┬─────────┬────────┬────────────┬──────────────┐
//! │ u32 LE len │ version │ alg id │ payload …  │ u64 LE FNV   │
//! └────────────┴─────────┴────────┴────────────┴──────────────┘
//!               └──────── checksummed region ──┘
//! ```
//!
//! `len` counts everything after itself (version byte through checksum).
//! The version byte rejects frames from incompatible builds, the algorithm
//! id rejects cross-algorithm confusion (an `A2Msg` frame handed to an A1
//! node), and the FNV-1a checksum (the same [`Fnv`] the schedule explorer
//! uses for state digests) rejects truncation and bit flips. Decoding is
//! strict: trailing bytes after the payload are an error, not padding.
//!
//! There are **no panic paths**: [`decode_frame`] returns `Err` for every
//! malformed input, which the robustness suite exercises with seeded
//! corruption (see `tests/codec_robustness.rs`).

use baselines::CmMsg;
use doorway::{DoorwayMsg, DoorwaySet, DoorwayTag};
use local_mutex::{A1Msg, A2Msg, RecolorMsg};
use manet_sim::Fnv;

/// Wire-format version; bump on any frame-layout change.
pub const WIRE_VERSION: u8 = 1;

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced frame did.
    Truncated,
    /// The length prefix disagrees with the buffer (short or trailing
    /// garbage after the frame).
    BadLength {
        /// Bytes the prefix announced.
        announced: usize,
        /// Bytes actually present after the prefix.
        present: usize,
    },
    /// Unknown wire-format version.
    BadVersion(u8),
    /// The frame carries another algorithm's messages.
    BadAlg {
        /// The algorithm id this decoder expected.
        expected: u8,
        /// The algorithm id found in the frame.
        got: u8,
    },
    /// The checksum did not match (bit flip or torn write).
    BadChecksum,
    /// An enum discriminant or field value was out of range.
    BadValue(&'static str),
    /// The payload decoded but left unconsumed bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadLength { announced, present } => {
                write!(f, "length prefix says {announced} bytes, found {present}")
            }
            CodecError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            CodecError::BadAlg { expected, got } => {
                write!(f, "frame for algorithm id {got}, expected {expected}")
            }
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
            CodecError::BadValue(what) => write!(f, "invalid {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounded cursor over a payload; every read checks remaining length.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap `buf` for reading from the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Read a strict boolean (`0` or `1`; anything else is an error, so a
    /// bit flip in a flag byte cannot decode).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::BadValue("bool")),
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A message type with a wire encoding — implemented for every message the
/// live runtime can carry ([`A1Msg`], [`A2Msg`], [`CmMsg`]).
pub trait WireMsg: Clone + std::fmt::Debug + Sized {
    /// Domain separator baked into every frame of this message family.
    const ALG_ID: u8;

    /// Append the payload bytes (excluding version/alg/checksum).
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decode the payload previously written by [`WireMsg::encode_payload`].
    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encode one message as a complete length-prefixed frame.
pub fn encode_frame<M: WireMsg>(msg: &M) -> Vec<u8> {
    let mut body = vec![WIRE_VERSION, M::ALG_ID];
    msg.encode_payload(&mut body);
    let mut h = Fnv::new();
    h.write_bytes(&body);
    let mut out = Vec::with_capacity(4 + body.len() + 8);
    put_u32(&mut out, (body.len() + 8) as u32);
    out.extend_from_slice(&body);
    put_u64(&mut out, h.finish());
    out
}

/// Decode one complete frame. Strict: the buffer must contain exactly one
/// frame, the checksum must match, and the payload must consume fully.
pub fn decode_frame<M: WireMsg>(bytes: &[u8]) -> Result<M, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let announced = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let rest = &bytes[4..];
    if rest.len() != announced {
        return Err(CodecError::BadLength {
            announced,
            present: rest.len(),
        });
    }
    // version + alg + checksum is the smallest legal frame.
    if announced < 2 + 8 {
        return Err(CodecError::Truncated);
    }
    let (body, sum) = rest.split_at(announced - 8);
    let mut h = Fnv::new();
    h.write_bytes(body);
    let expect = u64::from_le_bytes([
        sum[0], sum[1], sum[2], sum[3], sum[4], sum[5], sum[6], sum[7],
    ]);
    if h.finish() != expect {
        return Err(CodecError::BadChecksum);
    }
    let mut r = Reader::new(body);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let alg = r.u8()?;
    if alg != M::ALG_ID {
        return Err(CodecError::BadAlg {
            expected: M::ALG_ID,
            got: alg,
        });
    }
    let msg = M::decode_payload(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

fn encode_set(set: DoorwaySet, out: &mut Vec<u8>) {
    let mut mask = 0u8;
    for tag in set.iter() {
        mask |= 1 << tag.index();
    }
    out.push(mask);
}

fn decode_set(r: &mut Reader<'_>) -> Result<DoorwaySet, CodecError> {
    let mask = r.u8()?;
    let mut set = DoorwaySet::EMPTY;
    for i in 0..8u8 {
        if mask & (1 << i) != 0 {
            set.insert(DoorwayTag::new(i));
        }
    }
    Ok(set)
}

fn decode_tag(r: &mut Reader<'_>) -> Result<DoorwayTag, CodecError> {
    let i = r.u8()?;
    if i >= 8 {
        return Err(CodecError::BadValue("doorway tag"));
    }
    Ok(DoorwayTag::new(i))
}

fn encode_doorway(msg: &DoorwayMsg, out: &mut Vec<u8>) {
    match *msg {
        DoorwayMsg::Cross(t) => {
            out.push(0);
            out.push(t.index());
        }
        DoorwayMsg::Exit(t) => {
            out.push(1);
            out.push(t.index());
        }
        DoorwayMsg::ExitAll => out.push(2),
        DoorwayMsg::Status(s) => {
            out.push(3);
            encode_set(s, out);
        }
    }
}

fn decode_doorway(r: &mut Reader<'_>) -> Result<DoorwayMsg, CodecError> {
    match r.u8()? {
        0 => Ok(DoorwayMsg::Cross(decode_tag(r)?)),
        1 => Ok(DoorwayMsg::Exit(decode_tag(r)?)),
        2 => Ok(DoorwayMsg::ExitAll),
        3 => Ok(DoorwayMsg::Status(decode_set(r)?)),
        _ => Err(CodecError::BadValue("doorway discriminant")),
    }
}

fn encode_recolor(msg: &RecolorMsg, out: &mut Vec<u8>) {
    match msg {
        RecolorMsg::Graph { edges, finished } => {
            out.push(0);
            put_u32(out, edges.len() as u32);
            for &(a, b) in edges {
                put_u32(out, a);
                put_u32(out, b);
            }
            out.push(*finished as u8);
        }
        RecolorMsg::TempColor(c) => {
            out.push(1);
            put_u64(out, *c);
        }
        RecolorMsg::Candidate { value, decided } => {
            out.push(2);
            put_u64(out, *value);
            out.push(*decided as u8);
        }
        RecolorMsg::Nack => out.push(3),
    }
}

fn decode_recolor(r: &mut Reader<'_>) -> Result<RecolorMsg, CodecError> {
    match r.u8()? {
        0 => {
            let count = r.u32()? as usize;
            // Each edge is 8 bytes; reject counts the buffer cannot hold
            // before allocating (a flipped length bit must not OOM).
            if count > r.remaining() / 8 {
                return Err(CodecError::BadValue("edge count"));
            }
            let mut edges = Vec::with_capacity(count);
            for _ in 0..count {
                let a = r.u32()?;
                let b = r.u32()?;
                edges.push((a, b));
            }
            let finished = r.bool()?;
            Ok(RecolorMsg::Graph { edges, finished })
        }
        1 => Ok(RecolorMsg::TempColor(r.u64()?)),
        2 => Ok(RecolorMsg::Candidate {
            value: r.u64()?,
            decided: r.bool()?,
        }),
        3 => Ok(RecolorMsg::Nack),
        _ => Err(CodecError::BadValue("recolor discriminant")),
    }
}

impl WireMsg for A1Msg {
    const ALG_ID: u8 = 1;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            A1Msg::Doorway(d) => {
                out.push(0);
                encode_doorway(d, out);
            }
            A1Msg::Req => out.push(1),
            A1Msg::Fork { flag, gen } => {
                out.push(2);
                out.push(*flag as u8);
                put_u64(out, *gen);
            }
            A1Msg::UpdateColor(c) => {
                out.push(3);
                put_u64(out, *c as u64);
            }
            A1Msg::Hello { color, behind } => {
                out.push(4);
                put_u64(out, *color as u64);
                encode_set(*behind, out);
            }
            A1Msg::Recolor(m) => {
                out.push(5);
                encode_recolor(m, out);
            }
        }
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<A1Msg, CodecError> {
        match r.u8()? {
            0 => Ok(A1Msg::Doorway(decode_doorway(r)?)),
            1 => Ok(A1Msg::Req),
            2 => Ok(A1Msg::Fork {
                flag: r.bool()?,
                gen: r.u64()?,
            }),
            3 => Ok(A1Msg::UpdateColor(r.i64()?)),
            4 => Ok(A1Msg::Hello {
                color: r.i64()?,
                behind: decode_set(r)?,
            }),
            5 => Ok(A1Msg::Recolor(decode_recolor(r)?)),
            _ => Err(CodecError::BadValue("a1 discriminant")),
        }
    }
}

impl WireMsg for A2Msg {
    const ALG_ID: u8 = 2;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            A2Msg::Req => out.push(0),
            A2Msg::Fork { flag, gen } => {
                out.push(1);
                out.push(*flag as u8);
                put_u64(out, *gen);
            }
            A2Msg::Notification => out.push(2),
            A2Msg::Switch => out.push(3),
        }
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<A2Msg, CodecError> {
        match r.u8()? {
            0 => Ok(A2Msg::Req),
            1 => Ok(A2Msg::Fork {
                flag: r.bool()?,
                gen: r.u64()?,
            }),
            2 => Ok(A2Msg::Notification),
            3 => Ok(A2Msg::Switch),
            _ => Err(CodecError::BadValue("a2 discriminant")),
        }
    }
}

impl WireMsg for CmMsg {
    const ALG_ID: u8 = 3;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            CmMsg::ReqToken => out.push(0),
            CmMsg::Fork => out.push(1),
        }
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<CmMsg, CodecError> {
        match r.u8()? {
            0 => Ok(CmMsg::ReqToken),
            1 => Ok(CmMsg::Fork),
            _ => Err(CodecError::BadValue("cm discriminant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<M: WireMsg + PartialEq>(msg: M) {
        let frame = encode_frame(&msg);
        assert_eq!(decode_frame::<M>(&frame).unwrap(), msg);
    }

    #[test]
    fn representative_round_trips() {
        round_trip(A1Msg::Req);
        round_trip(A1Msg::Hello {
            color: -3,
            behind: {
                let mut s = DoorwaySet::EMPTY;
                s.insert(DoorwayTag::new(2));
                s
            },
        });
        round_trip(A1Msg::Recolor(RecolorMsg::Graph {
            edges: vec![(0, 1), (7, 9)],
            finished: true,
        }));
        round_trip(A2Msg::Fork { flag: true, gen: 9 });
        round_trip(CmMsg::ReqToken);
    }

    #[test]
    fn cross_algorithm_frames_are_rejected() {
        let frame = encode_frame(&A2Msg::Req);
        assert_eq!(
            decode_frame::<A1Msg>(&frame),
            Err(CodecError::BadAlg {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let frame = encode_frame(&A1Msg::Fork { flag: true, gen: 7 });
        // Truncation at every prefix length.
        for cut in 0..frame.len() {
            assert!(decode_frame::<A1Msg>(&frame[..cut]).is_err(), "cut {cut}");
        }
        // Any single bit flip must fail (checksum or stricter field checks).
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame::<A1Msg>(&bad).is_err(),
                    "flip byte {byte} bit {bit} decoded"
                );
            }
        }
    }

    #[test]
    fn oversized_edge_count_is_rejected_without_allocating() {
        // A Graph frame whose length field claims 2^31 edges.
        let mut body = vec![WIRE_VERSION, A1Msg::ALG_ID, 5, 0];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut h = Fnv::new();
        h.write_bytes(&body);
        let mut frame = Vec::new();
        frame.extend_from_slice(&((body.len() + 8) as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&h.finish().to_le_bytes());
        assert_eq!(
            decode_frame::<A1Msg>(&frame),
            Err(CodecError::BadValue("edge count"))
        );
    }
}
