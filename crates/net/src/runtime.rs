//! The live runtime: one OS thread per node, real transports, and a
//! driver that injects mobility and faults by the same rules the
//! simulator uses.
//!
//! Each node thread owns one protocol automaton (`sim::Protocol` — the
//! *same* state machines the deterministic engine runs), one transport
//! endpoint, and a self-driven workload clocked by a per-node [`SimRng`].
//! The thread loop is: drain control messages from the driver, fire due
//! workload/timer deadlines, then block briefly on the transport. Wall
//! time divided by `tick_ns` plays the role of virtual time in the
//! `Context` handed to the automaton.
//!
//! The driver (the calling thread) owns the mirror [`World`]: it
//! teleports nodes along the configured waypoints, translates the
//! resulting [`LinkChange`]s into per-node control events with the
//! engine's static/moving symmetry breaking, and injects crashes and
//! partitions by flipping the [`LinkGate`] — severing transports without
//! telling the protocols, exactly like the simulator's fault adversary.
//!
//! Everything observable lands in a [`LiveTrace`] (see [`crate::trace`])
//! which is validated by the harness safety monitor and exportable as a
//! simulator schedule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use baselines::ChandyMisra;
use coloring::LinialSchedule;
use harness::Violation;
use local_mutex::{Algorithm1, Algorithm2};
use manet_sim::{
    Context, DiningState, Event, LinkChange, LinkUpKind, NodeId, NodeSeed, Position, Protocol,
    SimConfig, SimRng, SimTime, World,
};

use std::collections::VecDeque;

use crate::codec::{decode_frame, encode_frame, WireMsg};
use crate::trace::{LiveEventKind, LiveRecord, LiveTrace};
use crate::transport::{
    decode_envelope, encode_envelope, mpsc_mesh, udp_mesh, LinkGate, Transport, TransportKind,
    ENV_ACK, ENV_DATA,
};

/// Which protocol a live run hosts.
///
/// The set is the thread-safe subset of [`harness::AlgKind`]:
/// `choy-singh` shares its coloring via `Rc` and cannot cross threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveAlg {
    /// Algorithm 1 with the greedy doorway coloring.
    A1Greedy,
    /// Algorithm 1 with the Linial-schedule coloring.
    A1Linial,
    /// Algorithm 1 with the randomized recoloring doorway. The `SimRng`
    /// choice state stays node-local; only the recoloring messages cross
    /// the wire, and those have a codec, so the algorithm is fully
    /// live-capable.
    A1Random,
    /// Algorithm 2 (doorway-free).
    A2,
    /// The Chandy–Misra baseline.
    ChandyMisra,
}

impl LiveAlg {
    /// All live-capable algorithms, in canonical order.
    pub fn all() -> [LiveAlg; 5] {
        [
            LiveAlg::A1Greedy,
            LiveAlg::A1Linial,
            LiveAlg::A1Random,
            LiveAlg::A2,
            LiveAlg::ChandyMisra,
        ]
    }

    /// Canonical name (also the `--alg` flag value).
    pub fn name(self) -> &'static str {
        match self {
            LiveAlg::A1Greedy => "A1-greedy",
            LiveAlg::A1Linial => "A1-linial",
            LiveAlg::A1Random => "A1-random",
            LiveAlg::A2 => "A2",
            LiveAlg::ChandyMisra => "chandy-misra",
        }
    }

    /// Parse an `--alg` flag value (case-insensitive).
    pub fn parse(s: &str) -> Result<LiveAlg, String> {
        match s.to_ascii_lowercase().as_str() {
            "a1-greedy" => Ok(LiveAlg::A1Greedy),
            "a1-linial" => Ok(LiveAlg::A1Linial),
            "a1-random" => Ok(LiveAlg::A1Random),
            "a2" => Ok(LiveAlg::A2),
            "chandy-misra" => Ok(LiveAlg::ChandyMisra),
            other => Err(format!(
                "unknown live algorithm '{other}'; live runs support \
                 A1-greedy, A1-linial, A1-random, A2, chandy-misra"
            )),
        }
    }

    /// The corresponding simulator algorithm (for conformance replay).
    pub fn as_alg_kind(self) -> harness::AlgKind {
        match self {
            LiveAlg::A1Greedy => harness::AlgKind::A1Greedy,
            LiveAlg::A1Linial => harness::AlgKind::A1Linial,
            LiveAlg::A1Random => harness::AlgKind::A1Random,
            LiveAlg::A2 => harness::AlgKind::A2,
            LiveAlg::ChandyMisra => harness::AlgKind::ChandyMisra,
        }
    }
}

/// Which execution engine hosts the nodes of a live run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiveRuntime {
    /// One OS thread per node — faithful, simple, caps out at hundreds
    /// of nodes.
    ThreadPerNode,
    /// A fixed worker pool owning contiguous node shards (see
    /// [`crate::shard`]); scales to tens of thousands of nodes.
    Sharded {
        /// Worker-pool size; 0 picks the host parallelism (min 2).
        workers: usize,
    },
}

impl LiveRuntime {
    /// Canonical name (also the `--runtime` flag value).
    pub fn name(self) -> &'static str {
        match self {
            LiveRuntime::ThreadPerNode => "thread-per-node",
            LiveRuntime::Sharded { .. } => "sharded",
        }
    }

    /// Parse a `--runtime` flag value (case-insensitive). `sharded`
    /// starts with `workers: 0` (auto); set the field for an explicit
    /// pool size.
    pub fn parse(s: &str) -> Result<LiveRuntime, String> {
        match s.to_ascii_lowercase().as_str() {
            "thread-per-node" | "thread" | "threads" => Ok(LiveRuntime::ThreadPerNode),
            "sharded" => Ok(LiveRuntime::Sharded { workers: 0 }),
            other => Err(format!(
                "unknown live runtime '{other}'; expected thread-per-node or sharded"
            )),
        }
    }
}

/// Everything that defines one live run.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Which protocol to host.
    pub alg: LiveAlg,
    /// Which transport carries the frames.
    pub transport: TransportKind,
    /// Node positions; links follow the unit-disk rule with the
    /// simulator's default radio range.
    pub positions: Vec<(f64, f64)>,
    /// Wall-clock run length in milliseconds.
    pub duration_ms: u64,
    /// Mean hungry-cycle rate per node, in cycles per second.
    pub rate: f64,
    /// Eating time per session in milliseconds (must fit under τ ticks).
    pub eat_ms: u64,
    /// One hungry cycle per node instead of a cyclic workload. The run
    /// ends early once every node has eaten (plus a drain window), which
    /// is what makes the eating census schedule-independent — the
    /// property the conformance replay asserts on.
    pub one_shot: bool,
    /// Seed for the per-node workload RNGs.
    pub seed: u64,
    /// Wall nanoseconds per virtual tick (the live analogue of the
    /// simulator quantum; ν = 10 ticks of this).
    pub tick_ns: u64,
    /// Crash `(node, at_ms)`: sever every adjacent transport and stop the
    /// node's thread from processing anything but shutdown.
    pub crash: Option<(u32, u64)>,
    /// Recover `(node, at_ms)`: restart the crashed node as a fresh
    /// protocol incarnation, heal its transports, and rejoin it to its
    /// neighbors with link flaps — the live mirror of the simulator's
    /// `Command::Recover`. Requires a matching `crash` of the same node at
    /// an earlier time.
    pub recover: Option<(u32, u64)>,
    /// Arm the per-link reliable-delivery shim: go-back-N retransmission
    /// with capped exponential backoff, cumulative acks piggybacked on
    /// data frames, and standalone acks after an idle timeout — the live
    /// mirror of `manet_sim::ArqConfig`.
    pub reliable: bool,
    /// Partition `(side, at_ms, heal_ms)`: silently sever every link
    /// between `side` and its complement for the window.
    pub partition: Option<(Vec<u32>, u64, u64)>,
    /// Teleport waypoints `(at_ms, node, destination)`.
    pub moves: Vec<(u64, u32, (f64, f64))>,
    /// Which execution engine hosts the nodes.
    pub runtime: LiveRuntime,
    /// Closed-loop workload: a node goes hungry again immediately after
    /// eating instead of drawing a think time, so throughput is set by
    /// the protocol and the runtime, not by the open-loop rate limiter.
    pub closed_loop: bool,
}

impl LiveConfig {
    /// A config with the standard knobs: 2 s runs, 25 hungry cycles per
    /// node-second, 2 ms meals, 0.1 ms ticks (so ν = 10 ticks = 1 ms of
    /// wall time).
    pub fn new(alg: LiveAlg, transport: TransportKind, positions: Vec<(f64, f64)>) -> LiveConfig {
        LiveConfig {
            alg,
            transport,
            positions,
            duration_ms: 2_000,
            rate: 25.0,
            eat_ms: 2,
            one_shot: false,
            seed: 0xA77D_2008,
            tick_ns: 100_000,
            crash: None,
            recover: None,
            partition: None,
            moves: Vec::new(),
            reliable: false,
            runtime: LiveRuntime::ThreadPerNode,
            closed_loop: false,
        }
    }

    fn validate(&self) -> Result<(), String> {
        let n = self.positions.len();
        if n == 0 {
            return Err("live run needs at least one node".into());
        }
        if self.rate <= 0.0 || !self.rate.is_finite() {
            return Err(format!(
                "--rate must be a positive number, got {}",
                self.rate
            ));
        }
        if self.tick_ns == 0 {
            return Err("tick_ns must be positive".into());
        }
        let tau_ns = SimConfig::default().max_eating_ticks * self.tick_ns;
        if self.eat_ms.saturating_mul(1_000_000) > tau_ns {
            return Err(format!(
                "--eat-ms {} exceeds τ ({} ms at the configured tick)",
                self.eat_ms,
                tau_ns / 1_000_000
            ));
        }
        for &(_, node, _) in &self.moves {
            if node as usize >= n {
                return Err(format!("move targets node {node}, but n = {n}"));
            }
        }
        if let Some((victim, _)) = self.crash {
            if victim as usize >= n {
                return Err(format!("crash targets node {victim}, but n = {n}"));
            }
        }
        if let Some((node, at_ms)) = self.recover {
            match self.crash {
                Some((victim, crash_ms)) if victim == node && at_ms > crash_ms => {}
                Some((victim, _)) if victim != node => {
                    return Err(format!(
                        "recover targets node {node}, but the crash targets {victim}"
                    ));
                }
                Some(_) => return Err("recover must come after the crash".into()),
                None => return Err("recover needs a preceding crash".into()),
            }
        }
        if let Some((side, at, heal)) = &self.partition {
            if heal <= at {
                return Err("partition must heal after it starts".into());
            }
            if let Some(&bad) = side.iter().find(|&&m| m as usize >= n) {
                return Err(format!("partition side contains node {bad}, but n = {n}"));
            }
        }
        if self.reliable && matches!(self.runtime, LiveRuntime::Sharded { .. }) {
            return Err("--reliable is not supported by the sharded runtime; \
                 use --runtime thread-per-node for the ARQ shim"
                .into());
        }
        Ok(())
    }
}

/// What one live run produced.
#[derive(Debug)]
pub struct LiveOutcome {
    /// The totally-ordered trace (already sorted).
    pub trace: LiveTrace,
    /// Eating sessions entered, per node.
    pub meals: Vec<u64>,
    /// Pooled hungry→eating latencies in nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Safety violations found by replaying the trace through the
    /// harness monitor (empty = the run was safe).
    pub violations: Vec<Violation>,
    /// Envelopes handed to transports.
    pub messages_sent: u64,
    /// Envelopes decoded and delivered to protocols.
    pub messages_delivered: u64,
    /// Envelopes or frames that failed to decode (0 on healthy transports).
    pub decode_errors: u64,
    /// Transport send calls that returned an error (0 on healthy
    /// transports; previously these failures were swallowed invisibly).
    pub send_failures: u64,
    /// Data frames retransmitted by the reliable shim (0 with
    /// `reliable: false`).
    pub retransmissions: u64,
    /// Standalone acknowledgment frames sent by the reliable shim.
    pub acks_sent: u64,
    /// Crash recoveries executed by the driver.
    pub recoveries: u64,
    /// Wall-clock length of the run in milliseconds.
    pub elapsed_ms: u64,
    /// Node threads that exited cleanly (always `n` on success).
    pub threads_joined: usize,
}

impl LiveOutcome {
    /// Total eating sessions across all nodes.
    pub fn total_meals(&self) -> u64 {
        self.meals.iter().sum()
    }

    /// Throughput: eating sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed_ms.max(1) as f64 / 1_000.0;
        self.total_meals() as f64 / secs
    }
}

/// State shared by the driver and every node thread.
struct Shared {
    origin: Instant,
    order: AtomicU64,
    gate: LinkGate,
    sent: AtomicU64,
    delivered: AtomicU64,
    decode_errors: AtomicU64,
    send_failures: AtomicU64,
    retransmissions: AtomicU64,
    acks_sent: AtomicU64,
    /// Nodes that have eaten at least once (one-shot early stop).
    ate: AtomicU64,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn ticket(&self) -> u64 {
        self.order.fetch_add(1, Ordering::Relaxed)
    }
}

/// Driver → node control plane. Kept separate from the data plane so
/// topology changes and shutdown cannot be lost to a severed transport.
/// Shared with the sharded runtime, whose workers apply the same events
/// to their owned nodes.
pub(crate) enum Ctrl {
    LinkUp { peer: NodeId, kind: LinkUpKind },
    LinkDown { peer: NodeId },
    MoveStarted,
    MoveEnded,
    Crash,
    Recover,
    Shutdown,
}

/// Reliable-shim sender state for one directed link: the unacknowledged
/// frame buffer (go-back-N) and its retransmission timer.
#[derive(Clone, Default)]
struct ArqSend {
    /// Buffered `(seq, frame)` pairs awaiting acknowledgment.
    buf: VecDeque<(u64, Vec<u8>)>,
    /// Wall deadline of the armed retransmission timer.
    rto_at: Option<u64>,
    /// Consecutive silent timeouts (drives the backoff and the give-up).
    attempts: u32,
}

/// Reliable-shim receiver state for one directed link.
#[derive(Clone, Copy, Default)]
struct ArqRecv {
    /// Next in-order sequence expected; 0 = resynchronize on the next
    /// frame (link incarnations reset here, and live envelope sequence
    /// numbers start at 1, so 0 is free as the sentinel).
    next: u64,
    /// A cumulative ack is owed to the peer.
    ack_owed: bool,
    /// Wall deadline of the armed standalone-ack idle timer.
    ack_at: Option<u64>,
}

/// Per-node immutable parameters.
struct NodeParams {
    me: NodeId,
    neighbors: Vec<NodeId>,
    n: usize,
    seed: u64,
    tick_ns: u64,
    rate: f64,
    eat_ns: u64,
    one_shot: bool,
    closed_loop: bool,
    reliable: bool,
}

/// The mutable heart of one node thread.
struct NodeCore<P: Protocol> {
    me: NodeId,
    tick_ns: u64,
    eat_ns: u64,
    one_shot: bool,
    closed_loop: bool,
    mean_think_ns: u64,
    rng: SimRng,
    proto: P,
    neighbors: Vec<NodeId>,
    moving: bool,
    crashed: bool,
    dining: DiningState,
    session: u64,
    ate_once: bool,
    send_seq: Vec<u64>,
    /// `(deadline_ns, token)` pairs from `Context::set_timer`.
    timers: Vec<(u64, u64)>,
    next_hungry: Option<u64>,
    exit_at: Option<u64>,
    outbox: Vec<(NodeId, P::Msg)>,
    timer_buf: Vec<(u64, u64)>,
    /// Reliable shim armed (`LiveConfig::reliable`).
    reliable: bool,
    /// ν in wall nanoseconds (the sim's delay bound times `tick_ns`).
    nu_ns: u64,
    /// Per-peer sender shim state (indexed by peer, empty when off).
    arq_send: Vec<ArqSend>,
    /// Per-peer receiver shim state.
    arq_recv: Vec<ArqRecv>,
    /// Fresh protocol instance swapped in on `Ctrl::Recover`.
    spare: Option<P>,
    // Per-node counters behind the shutdown NetStats record.
    n_decode_errors: u64,
    n_send_failures: u64,
    n_retransmissions: u64,
    n_acks_sent: u64,
    shared: Arc<Shared>,
    out: Sender<LiveRecord>,
}

/// Give up retransmitting to a silent peer after this many consecutive
/// timeouts (a crashed neighbor never acks; its links stay up).
const ARQ_MAX_RETRIES: u32 = 16;

impl<P> NodeCore<P>
where
    P: Protocol,
    P::Msg: WireMsg,
{
    fn record(&self, kind: LiveEventKind) {
        let at_ns = self.shared.now_ns();
        let order = self.shared.ticket();
        let _ = self.out.send(LiveRecord { at_ns, order, kind });
    }

    /// Feed one event to the automaton, flush what it emitted, and do the
    /// workload bookkeeping for any dining transition.
    fn apply(&mut self, ev: Event<P::Msg>, transport: &mut dyn Transport) {
        let now = self.shared.now_ns();
        {
            let mut ctx = Context::for_host(
                self.me,
                SimTime(now / self.tick_ns),
                &self.neighbors,
                self.moving,
                &mut self.outbox,
                &mut self.timer_buf,
            );
            self.proto.on_event(ev, &mut ctx);
        }
        for (delay_ticks, token) in std::mem::take(&mut self.timer_buf) {
            self.timers
                .push((now + delay_ticks.saturating_mul(self.tick_ns), token));
        }
        // Record any dining transition BEFORE transmitting the messages
        // that announce it. A send is a wakeup point: the receiver thread
        // can run the whole delivery path (and take trace tickets) before
        // this thread gets the CPU back, and a fork handover recorded
        // send-first would read as two neighbors eating at once. Ticketing
        // the transition first pins exit < send < deliver < entry in the
        // total order.
        let new = self.proto.dining_state();
        let old = self.dining;
        if new != old {
            self.dining = new;
            if new == DiningState::Eating {
                self.session += 1;
                self.exit_at = Some(self.shared.now_ns() + self.eat_ns);
                if !self.ate_once {
                    self.ate_once = true;
                    self.shared.ate.fetch_add(1, Ordering::Relaxed);
                }
            }
            if old == DiningState::Eating {
                // Covers both a normal exit and a mobility demotion back to
                // hungry: either way the meal is over.
                self.exit_at = None;
                if new == DiningState::Thinking && !self.one_shot {
                    let think = if self.closed_loop {
                        0
                    } else {
                        self.draw_think()
                    };
                    self.next_hungry = Some(self.shared.now_ns() + think);
                }
            }
            self.record(LiveEventKind::State {
                node: self.me,
                old,
                new,
                session: self.session,
            });
        }
        for (to, msg) in std::mem::take(&mut self.outbox) {
            self.transmit(to, msg, transport);
        }
    }

    fn draw_think(&mut self) -> u64 {
        // Uniform in [0.5, 1.5] of the mean, like the sim workload's
        // jittered think times.
        let lo = (self.mean_think_ns / 2).max(1);
        let hi = lo + self.mean_think_ns;
        self.rng.gen_range(lo..=hi)
    }

    /// Push one already-framed envelope onto the wire, counting (not
    /// swallowing) transport failures.
    fn raw_send(
        &mut self,
        to: NodeId,
        kind: u8,
        seq: u64,
        ack: u64,
        frame: &[u8],
        transport: &mut dyn Transport,
    ) {
        let env = encode_envelope(self.me, kind, seq, ack, self.shared.now_ns(), frame);
        if transport.send(to, &env).is_err() {
            self.n_send_failures += 1;
            self.shared.send_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The cumulative ack to piggyback on traffic toward `to` (clears the
    /// owed flag and the standalone-ack timer; 0 when nothing to ack).
    fn take_piggyback_ack(&mut self, to: NodeId) -> u64 {
        if !self.reliable {
            return 0;
        }
        let slot = &mut self.arq_recv[to.index()];
        slot.ack_owed = false;
        slot.ack_at = None;
        slot.next.saturating_sub(1)
    }

    /// Backoff delay before the next retransmission, with jitter.
    fn arq_backoff(&mut self, attempts: u32) -> u64 {
        let init = (2 * self.nu_ns).max(1);
        let cap = 16 * self.nu_ns;
        let base = init
            .checked_shl(attempts.min(32))
            .unwrap_or(u64::MAX)
            .min(cap.max(init));
        base + self.rng.gen_range(0..=init / 4)
    }

    /// Apply a cumulative ack from `peer` to the send buffer toward it.
    fn apply_ack(&mut self, peer: NodeId, ack: u64) {
        if !self.reliable || ack == 0 {
            return;
        }
        let slot = &mut self.arq_send[peer.index()];
        let before = slot.buf.len();
        while slot.buf.front().is_some_and(|&(seq, _)| seq <= ack) {
            slot.buf.pop_front();
        }
        if slot.buf.len() == before {
            return;
        }
        slot.attempts = 0;
        if slot.buf.is_empty() {
            slot.rto_at = None;
        } else {
            let at = self.shared.now_ns() + self.arq_backoff(0);
            self.arq_send[peer.index()].rto_at = Some(at);
        }
    }

    fn transmit(&mut self, to: NodeId, msg: P::Msg, transport: &mut dyn Transport) {
        if self.crashed || to == self.me || !self.neighbors.contains(&to) {
            return;
        }
        if self.shared.gate.is_severed(self.me, to) {
            // Severed at send time: the message dies silently, exactly like
            // the engine's `dropped_at_send`.
            return;
        }
        let seq = &mut self.send_seq[to.index()];
        *seq += 1;
        let seq = *seq;
        let frame = encode_frame(&msg);
        let ack = self.take_piggyback_ack(to);
        if self.reliable {
            let slot = &mut self.arq_send[to.index()];
            slot.buf.push_back((seq, frame.clone()));
            if slot.rto_at.is_none() {
                let at = self.shared.now_ns() + self.arq_backoff(0);
                self.arq_send[to.index()].rto_at = Some(at);
            }
        }
        self.raw_send(to, ENV_DATA, seq, ack, &frame, transport);
        self.shared.sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Fire a due retransmission timer toward `peer`: resend every
    /// buffered frame (go-back-N), double the backoff, and give up on a
    /// peer that stayed silent through [`ARQ_MAX_RETRIES`] timeouts.
    fn fire_rto(&mut self, peer: NodeId, transport: &mut dyn Transport) {
        let slot = &mut self.arq_send[peer.index()];
        slot.rto_at = None;
        if slot.buf.is_empty() {
            return;
        }
        slot.attempts += 1;
        if slot.attempts > ARQ_MAX_RETRIES {
            // The peer is gone (crashed, or the link died without notice):
            // stop retransmitting so the timer load stays bounded. A later
            // link flap resynchronizes both ends.
            slot.buf.clear();
            slot.attempts = 0;
            return;
        }
        let attempts = slot.attempts;
        let frames: Vec<(u64, Vec<u8>)> = slot.buf.iter().cloned().collect();
        if self.shared.gate.is_severed(self.me, peer) || !self.neighbors.contains(&peer) {
            // Keep backing off while the path is dark; frames stay buffered.
            let at = self.shared.now_ns() + self.arq_backoff(attempts);
            self.arq_send[peer.index()].rto_at = Some(at);
            return;
        }
        self.n_retransmissions += frames.len() as u64;
        self.shared
            .retransmissions
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        let ack = self.take_piggyback_ack(peer);
        for (seq, frame) in &frames {
            self.raw_send(peer, ENV_DATA, *seq, ack, frame, transport);
        }
        let at = self.shared.now_ns() + self.arq_backoff(attempts);
        self.arq_send[peer.index()].rto_at = Some(at);
    }

    /// Fire a due standalone-ack timer: the link toward `peer` has been
    /// idle since traffic arrived, so the owed cumulative ack gets its own
    /// frame.
    fn fire_ack_idle(&mut self, peer: NodeId, transport: &mut dyn Transport) {
        let slot = &mut self.arq_recv[peer.index()];
        slot.ack_at = None;
        if !slot.ack_owed {
            return;
        }
        slot.ack_owed = false;
        let ack = slot.next.saturating_sub(1);
        if self.shared.gate.is_severed(self.me, peer) || !self.neighbors.contains(&peer) {
            return;
        }
        self.n_acks_sent += 1;
        self.shared.acks_sent.fetch_add(1, Ordering::Relaxed);
        self.raw_send(peer, ENV_ACK, 0, ack, b"", transport);
    }

    /// Reset the shim state of the directed links to and from `peer` — a
    /// new link incarnation owes nothing to the old one.
    fn reset_arq(&mut self, peer: NodeId) {
        if self.reliable {
            self.arq_send[peer.index()] = ArqSend::default();
            self.arq_recv[peer.index()] = ArqRecv::default();
        }
    }

    /// Returns `true` when the driver asked for shutdown.
    fn handle_ctrl(&mut self, ctrl: Ctrl, transport: &mut dyn Transport) -> bool {
        match ctrl {
            Ctrl::Shutdown => {
                self.record(LiveEventKind::NetStats {
                    node: self.me,
                    decode_errors: self.n_decode_errors,
                    send_failures: self.n_send_failures,
                    retransmissions: self.n_retransmissions,
                    acks_sent: self.n_acks_sent,
                });
                return true;
            }
            Ctrl::Crash => {
                // From here on the node is inert: the crash record is
                // emitted by us (not the driver) so it is serialized
                // against our own state records.
                self.crashed = true;
                self.record(LiveEventKind::Crash { node: self.me });
            }
            Ctrl::Recover => {
                // Restart as a fresh incarnation: new protocol instance,
                // empty neighborhood (the driver's rejoin link-ups follow
                // in the same mailbox), all shim and workload state of the
                // dead incarnation discarded. The eating-session counter is
                // NOT reset — it is monotonic across incarnations, which
                // the trace validator depends on.
                if self.crashed {
                    if let Some(fresh) = self.spare.take() {
                        self.crashed = false;
                        self.proto = fresh;
                        self.neighbors.clear();
                        self.timers.clear();
                        self.outbox.clear();
                        self.moving = false;
                        self.exit_at = None;
                        self.dining = self.proto.dining_state();
                        for s in &mut self.arq_send {
                            *s = ArqSend::default();
                        }
                        for r in &mut self.arq_recv {
                            *r = ArqRecv::default();
                        }
                        self.record(LiveEventKind::Recover { node: self.me });
                        let think = self.draw_think();
                        self.next_hungry = Some(self.shared.now_ns() + think);
                    }
                }
            }
            _ if self.crashed => {}
            Ctrl::LinkUp { peer, kind } => {
                if let Err(slot) = self.neighbors.binary_search(&peer) {
                    self.neighbors.insert(slot, peer);
                }
                self.reset_arq(peer);
                self.apply(Event::LinkUp { peer, kind }, transport);
            }
            Ctrl::LinkDown { peer } => {
                if let Ok(slot) = self.neighbors.binary_search(&peer) {
                    self.neighbors.remove(slot);
                }
                self.reset_arq(peer);
                self.apply(Event::LinkDown { peer }, transport);
            }
            Ctrl::MoveStarted => {
                self.moving = true;
                self.apply(Event::MovementStarted, transport);
            }
            Ctrl::MoveEnded => {
                self.moving = false;
                self.apply(Event::MovementEnded, transport);
            }
        }
        false
    }

    /// Fire every due workload deadline and timer.
    fn tick(&mut self, transport: &mut dyn Transport) {
        let now = self.shared.now_ns();
        if self.dining == DiningState::Thinking {
            if let Some(at) = self.next_hungry {
                if at <= now {
                    self.next_hungry = None;
                    self.apply(Event::Hungry, transport);
                }
            }
        }
        if self.dining == DiningState::Eating {
            if let Some(at) = self.exit_at {
                if at <= now {
                    self.exit_at = None;
                    self.apply(Event::ExitCs, transport);
                }
            }
        }
        while let Some(i) = self.timers.iter().position(|&(at, _)| at <= now) {
            let (_, token) = self.timers.swap_remove(i);
            self.apply(Event::Timer { token }, transport);
        }
        if self.reliable {
            for i in 0..self.arq_send.len() {
                if self.arq_send[i].rto_at.is_some_and(|at| at <= now) {
                    self.fire_rto(NodeId(i as u32), transport);
                }
            }
            for i in 0..self.arq_recv.len() {
                if self.arq_recv[i].ack_at.is_some_and(|at| at <= now) {
                    self.fire_ack_idle(NodeId(i as u32), transport);
                }
            }
        }
    }

    /// How long the transport poll may block before the next deadline.
    fn poll_timeout(&self) -> Duration {
        let now = self.shared.now_ns();
        let mut deadline = now + 1_000_000; // re-check at least every 1 ms
        for at in self
            .next_hungry
            .iter()
            .chain(self.exit_at.iter())
            .chain(self.timers.iter().map(|(at, _)| at))
            .chain(self.arq_send.iter().filter_map(|s| s.rto_at.as_ref()))
            .chain(self.arq_recv.iter().filter_map(|r| r.ack_at.as_ref()))
        {
            deadline = deadline.min(*at);
        }
        Duration::from_nanos(deadline.saturating_sub(now).clamp(50_000, 1_000_000))
    }

    fn count_decode_error(&mut self) {
        self.n_decode_errors += 1;
        self.shared.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    fn on_envelope(&mut self, env: &[u8], transport: &mut dyn Transport) {
        let (from, env_kind, seq, ack, sent_ns, frame) = match decode_envelope(env) {
            Ok(parts) => parts,
            Err(_) => {
                self.count_decode_error();
                return;
            }
        };
        // In-flight losses: traffic from a peer that is no longer a
        // neighbor (the link died under the message) or across a severed
        // link is dropped before the protocol sees it, like the engine's
        // `dropped_in_flight`.
        if self.neighbors.binary_search(&from).is_err()
            || self.shared.gate.is_severed(from, self.me)
        {
            return;
        }
        if env_kind == ENV_ACK {
            self.apply_ack(from, ack);
            return;
        }
        if env_kind != ENV_DATA {
            self.count_decode_error();
            return;
        }
        self.apply_ack(from, ack);
        if self.reliable {
            // In-order filter: resynchronize on the first frame of a link
            // incarnation (next == 0), deliver exactly the expected
            // sequence, and drop gaps/duplicates — go-back-N retransmission
            // re-supplies them in order.
            let slot = &mut self.arq_recv[from.index()];
            if slot.next != 0 && seq != slot.next {
                // A gap or duplicate still deserves an ack so the sender's
                // window can advance past delivered frames.
                slot.ack_owed = true;
                if slot.ack_at.is_none() {
                    slot.ack_at = Some(self.shared.now_ns() + self.nu_ns);
                }
                return;
            }
            slot.next = seq + 1;
            slot.ack_owed = true;
            if slot.ack_at.is_none() {
                slot.ack_at = Some(self.shared.now_ns() + self.nu_ns);
            }
        }
        match decode_frame::<P::Msg>(frame) {
            Ok(msg) => {
                let latency_ns = self.shared.now_ns().saturating_sub(sent_ns);
                self.record(LiveEventKind::Deliver {
                    from,
                    to: self.me,
                    seq,
                    kind: P::msg_kind(&msg),
                    latency_ns,
                });
                self.shared.delivered.fetch_add(1, Ordering::Relaxed);
                self.apply(Event::Message { from, msg }, transport);
            }
            Err(_) => {
                self.count_decode_error();
            }
        }
    }
}

fn node_main<P>(
    proto: P,
    spare: Option<P>,
    p: NodeParams,
    mut transport: Box<dyn Transport>,
    ctrl: Receiver<Ctrl>,
    out: Sender<LiveRecord>,
    shared: Arc<Shared>,
) where
    P: Protocol,
    P::Msg: WireMsg,
{
    let mut rng = SimRng::seed_from_u64(p.seed ^ 0x11FE_0000 ^ ((p.me.0 as u64) << 32));
    let mean_think_ns = ((1e9 / p.rate) as u64).max(1);
    // Stagger the first hunger so the run opens with contention, not a
    // thundering herd at t = 0.
    let first = shared.now_ns() + rng.gen_range(0..=mean_think_ns / 2);
    let dining = proto.dining_state();
    let mut core = NodeCore {
        me: p.me,
        tick_ns: p.tick_ns,
        eat_ns: p.eat_ns,
        one_shot: p.one_shot,
        closed_loop: p.closed_loop,
        mean_think_ns,
        rng,
        proto,
        neighbors: p.neighbors,
        moving: false,
        crashed: false,
        dining,
        session: 0,
        ate_once: false,
        send_seq: vec![0; p.n],
        timers: Vec::new(),
        next_hungry: Some(first),
        exit_at: None,
        outbox: Vec::new(),
        timer_buf: Vec::new(),
        reliable: p.reliable,
        nu_ns: SimConfig::default()
            .max_message_delay
            .saturating_mul(p.tick_ns),
        arq_send: vec![ArqSend::default(); p.n],
        arq_recv: vec![ArqRecv::default(); p.n],
        spare,
        n_decode_errors: 0,
        n_send_failures: 0,
        n_retransmissions: 0,
        n_acks_sent: 0,
        shared,
        out,
    };
    loop {
        loop {
            match ctrl.try_recv() {
                Ok(c) => {
                    if core.handle_ctrl(c, transport.as_mut()) {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        if core.crashed {
            // Inert: ignore the data plane, wait for shutdown.
            match ctrl.recv_timeout(Duration::from_millis(20)) {
                Ok(c) => {
                    if core.handle_ctrl(c, transport.as_mut()) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            continue;
        }
        core.tick(transport.as_mut());
        let timeout = core.poll_timeout();
        if let Some(env) = transport.recv(timeout) {
            core.on_envelope(&env, transport.as_mut());
            // Drain whatever else is already queued before re-checking
            // deadlines, so bursts don't pay a poll timeout per message.
            while let Some(env) = transport.recv(Duration::ZERO) {
                core.on_envelope(&env, transport.as_mut());
            }
        }
    }
}

/// A driver-side fault/mobility action, due at `0` ns. Shared with the
/// sharded runtime's driver, which builds the same timeline.
pub(crate) enum Action {
    Crash(NodeId),
    Recover(NodeId),
    PartitionStart,
    PartitionEnd,
    Move(NodeId, Position),
}

/// Run one live execution and validate its trace.
///
/// # Errors
///
/// Configuration errors (bad rate, out-of-range fault targets, eating
/// time above τ), transport setup failures, and node-thread panics are
/// reported as `Err`; safety violations are *not* an error — they are
/// returned in [`LiveOutcome::violations`] for the caller to assert on.
pub fn run_live(cfg: &LiveConfig) -> Result<LiveOutcome, String> {
    cfg.validate()?;
    match cfg.alg {
        LiveAlg::A1Greedy => dispatch(cfg, Algorithm1::greedy),
        LiveAlg::A1Linial => {
            let radio_range = SimConfig::default().radio_range;
            let world = World::new(
                radio_range,
                cfg.positions.iter().map(|&p| p.into()).collect(),
            );
            let sched = Arc::new(LinialSchedule::compute(
                world.len() as u64,
                world.max_degree() as u64,
            ));
            dispatch(cfg, move |seed| Algorithm1::linial(seed, sched.clone()))
        }
        LiveAlg::A1Random => {
            let radio_range = SimConfig::default().radio_range;
            let world = World::new(
                radio_range,
                cfg.positions.iter().map(|&p| p.into()).collect(),
            );
            let delta = (world.max_degree() as u64).max(1);
            let rng_seed = cfg.seed;
            dispatch(cfg, move |seed| {
                Algorithm1::randomized(seed, delta, rng_seed)
            })
        }
        LiveAlg::A2 => dispatch(cfg, Algorithm2::new),
        LiveAlg::ChandyMisra => dispatch(cfg, ChandyMisra::new),
    }
}

/// Route a validated config to the configured runtime.
fn dispatch<P, F>(cfg: &LiveConfig, factory: F) -> Result<LiveOutcome, String>
where
    P: Protocol + Send + 'static,
    P::Msg: WireMsg + Send,
    F: FnMut(&NodeSeed) -> P,
{
    match cfg.runtime {
        LiveRuntime::ThreadPerNode => run_live_with(cfg, factory),
        LiveRuntime::Sharded { .. } => {
            crate::shard::run_sharded_with(cfg, factory, crate::shard::ShardTuning::default())
        }
    }
}

fn run_live_with<P, F>(cfg: &LiveConfig, mut factory: F) -> Result<LiveOutcome, String>
where
    P: Protocol + Send + 'static,
    P::Msg: WireMsg + Send,
    F: FnMut(&NodeSeed) -> P,
{
    let n = cfg.positions.len();
    let radio_range = SimConfig::default().radio_range;
    let mut world = World::new(
        radio_range,
        cfg.positions.iter().map(|&p| p.into()).collect(),
    );
    let max_degree = world.max_degree();
    let shared = Arc::new(Shared {
        origin: Instant::now(),
        order: AtomicU64::new(0),
        gate: LinkGate::new(n),
        sent: AtomicU64::new(0),
        delivered: AtomicU64::new(0),
        decode_errors: AtomicU64::new(0),
        send_failures: AtomicU64::new(0),
        retransmissions: AtomicU64::new(0),
        acks_sent: AtomicU64::new(0),
        ate: AtomicU64::new(0),
    });
    let transports: Vec<Box<dyn Transport>> = match cfg.transport {
        TransportKind::Mpsc => mpsc_mesh(n)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
        TransportKind::Udp => udp_mesh(n)?
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
    };

    let (rec_tx, rec_rx) = channel::<LiveRecord>();
    let mut ctrls = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (i, transport) in transports.into_iter().enumerate() {
        let me = NodeId(i as u32);
        let seed = NodeSeed {
            id: me,
            neighbors: world.neighbors(me).to_vec(),
            n_nodes: n,
            max_degree,
        };
        let proto = factory(&seed);
        // The recovery victim carries a pre-built fresh incarnation: the
        // factory cannot be shared with node threads, and a recovering
        // node rejoins with an empty neighborhood (rejoin link-ups follow).
        let spare = match cfg.recover {
            Some((victim, _)) if victim as usize == i => Some(factory(&NodeSeed {
                id: me,
                neighbors: Vec::new(),
                n_nodes: n,
                max_degree,
            })),
            _ => None,
        };
        let (ctx, crx) = channel::<Ctrl>();
        ctrls.push(ctx);
        let params = NodeParams {
            me,
            neighbors: seed.neighbors,
            n,
            seed: cfg.seed,
            tick_ns: cfg.tick_ns,
            rate: cfg.rate,
            eat_ns: cfg.eat_ms.saturating_mul(1_000_000),
            one_shot: cfg.one_shot,
            closed_loop: cfg.closed_loop,
            reliable: cfg.reliable,
        };
        let out = rec_tx.clone();
        let sh = shared.clone();
        handles.push(
            thread::Builder::new()
                .name(format!("lme-node-{i}"))
                .spawn(move || node_main(proto, spare, params, transport, crx, out, sh))
                .map_err(|e| format!("failed to spawn node thread {i}: {e}"))?,
        );
    }

    // Build the driver's action timeline in nanoseconds.
    let mut actions: Vec<(u64, Action)> = Vec::new();
    if let Some((victim, at_ms)) = cfg.crash {
        actions.push((at_ms * 1_000_000, Action::Crash(NodeId(victim))));
    }
    if let Some((node, at_ms)) = cfg.recover {
        actions.push((at_ms * 1_000_000, Action::Recover(NodeId(node))));
    }
    if let Some((_, at_ms, heal_ms)) = &cfg.partition {
        actions.push((at_ms * 1_000_000, Action::PartitionStart));
        actions.push((heal_ms * 1_000_000, Action::PartitionEnd));
    }
    for &(at_ms, node, dest) in &cfg.moves {
        actions.push((at_ms * 1_000_000, Action::Move(NodeId(node), dest.into())));
    }
    actions.sort_by_key(|&(at, _)| at);
    let cut_pairs: Vec<(NodeId, NodeId)> = match &cfg.partition {
        Some((side, _, _)) => {
            let inside: Vec<bool> = {
                let mut v = vec![false; n];
                for &m in side {
                    v[m as usize] = true;
                }
                v
            };
            (0..n as u32)
                .flat_map(|a| (0..n as u32).map(move |b| (NodeId(a), NodeId(b))))
                .filter(|&(a, b)| a < b && inside[a.index()] != inside[b.index()])
                .collect()
        }
        None => Vec::new(),
    };

    let deadline_ns = cfg.duration_ms.saturating_mul(1_000_000);
    let mut records: Vec<LiveRecord> = Vec::new();
    let mut ai = 0;
    let mut quiesce_at: Option<u64> = None;
    let mut recoveries: u64 = 0;
    let mut partition_active = false;
    loop {
        let now = shared.now_ns();
        while ai < actions.len() && actions[ai].0 <= now {
            let (_, action) = &actions[ai];
            ai += 1;
            match action {
                Action::Crash(victim) => {
                    // Sever first so no further traffic leaks, then tell the
                    // victim (it records the crash, serialized against its
                    // own state records). Peers are NOT notified: a crash
                    // is silent, exactly as in the simulator.
                    shared.gate.sever_all(*victim);
                    world.mark_crashed(*victim);
                    let _ = ctrls[victim.index()].send(Ctrl::Crash);
                }
                Action::Recover(node) => {
                    let node = *node;
                    if !world.is_crashed(node) {
                        continue;
                    }
                    world.mark_recovered(node);
                    // Reopen the victim's gates, except pairs an active
                    // partition still cuts.
                    for i in 0..n as u32 {
                        let peer = NodeId(i);
                        if peer == node || world.is_crashed(peer) {
                            continue;
                        }
                        let cut = partition_active
                            && cut_pairs
                                .iter()
                                .any(|&(a, b)| (a, b) == (node, peer) || (a, b) == (peer, node));
                        if !cut {
                            shared.gate.set_pair(node, peer, false);
                        }
                    }
                    // The victim restarts as a fresh incarnation first;
                    // then the rejoin flap makes each surviving neighbor
                    // drop its stale edge state and re-form the link with
                    // itself as the static (fork-owning) side, so no fork
                    // is duplicated or lost across the crash.
                    let _ = ctrls[node.index()].send(Ctrl::Recover);
                    for &peer in world.neighbors(node) {
                        if world.is_crashed(peer) {
                            continue;
                        }
                        records.push(LiveRecord {
                            at_ns: shared.now_ns(),
                            order: shared.ticket(),
                            kind: LiveEventKind::LinkDown { a: node, b: peer },
                        });
                        let _ = ctrls[peer.index()].send(Ctrl::LinkDown { peer: node });
                        records.push(LiveRecord {
                            at_ns: shared.now_ns(),
                            order: shared.ticket(),
                            kind: LiveEventKind::LinkUp { a: peer, b: node },
                        });
                        let _ = ctrls[peer.index()].send(Ctrl::LinkUp {
                            peer: node,
                            kind: LinkUpKind::AsStatic,
                        });
                        let _ = ctrls[node.index()].send(Ctrl::LinkUp {
                            peer,
                            kind: LinkUpKind::AsMoving,
                        });
                    }
                    recoveries += 1;
                }
                Action::PartitionStart => {
                    partition_active = true;
                    for &(a, b) in &cut_pairs {
                        shared.gate.set_pair(a, b, true);
                    }
                }
                Action::PartitionEnd => {
                    partition_active = false;
                    for &(a, b) in &cut_pairs {
                        if !world.is_crashed(a) && !world.is_crashed(b) {
                            shared.gate.set_pair(a, b, false);
                        }
                    }
                }
                Action::Move(m, dest) => {
                    if world.is_crashed(*m) {
                        continue;
                    }
                    // Record the relocation *before* the link records so a
                    // trace validator's mirror world updates its adjacency
                    // at the right point in the total order.
                    records.push(LiveRecord {
                        at_ns: shared.now_ns(),
                        order: shared.ticket(),
                        kind: LiveEventKind::Relocate {
                            node: *m,
                            x: dest.x,
                            y: dest.y,
                        },
                    });
                    let _ = ctrls[m.index()].send(Ctrl::MoveStarted);
                    for change in world.relocate(*m, *dest) {
                        match change {
                            LinkChange::Up(a, b) => {
                                // The moved node is the moving side; the
                                // peer is static and owns the new fork —
                                // the engine's symmetry breaking.
                                let (stat, mov) = if a == *m { (b, a) } else { (a, b) };
                                records.push(LiveRecord {
                                    at_ns: shared.now_ns(),
                                    order: shared.ticket(),
                                    kind: LiveEventKind::LinkUp { a: stat, b: mov },
                                });
                                let _ = ctrls[stat.index()].send(Ctrl::LinkUp {
                                    peer: mov,
                                    kind: LinkUpKind::AsStatic,
                                });
                                let _ = ctrls[mov.index()].send(Ctrl::LinkUp {
                                    peer: stat,
                                    kind: LinkUpKind::AsMoving,
                                });
                            }
                            LinkChange::Down(a, b) => {
                                records.push(LiveRecord {
                                    at_ns: shared.now_ns(),
                                    order: shared.ticket(),
                                    kind: LiveEventKind::LinkDown { a, b },
                                });
                                let _ = ctrls[a.index()].send(Ctrl::LinkDown { peer: b });
                                let _ = ctrls[b.index()].send(Ctrl::LinkDown { peer: a });
                            }
                        }
                    }
                    let _ = ctrls[m.index()].send(Ctrl::MoveEnded);
                }
            }
        }
        if now >= deadline_ns {
            break;
        }
        // One-shot runs end early once every node has eaten, after a short
        // drain window for trailing records.
        if cfg.one_shot && cfg.crash.is_none() && shared.ate.load(Ordering::Relaxed) as usize >= n {
            let at = *quiesce_at.get_or_insert(now + 50_000_000);
            if now >= at {
                break;
            }
        }
        let next_action = actions
            .get(ai)
            .map(|&(at, _)| at)
            .unwrap_or(u64::MAX)
            .min(deadline_ns);
        let wait_ns = next_action
            .saturating_sub(shared.now_ns())
            .clamp(100_000, 5_000_000);
        match rec_rx.recv_timeout(Duration::from_nanos(wait_ns)) {
            Ok(r) => records.push(r),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    for c in &ctrls {
        let _ = c.send(Ctrl::Shutdown);
    }
    drop(rec_tx);
    // Drain until every node thread has dropped its sender.
    for r in rec_rx.iter() {
        records.push(r);
    }
    let mut threads_joined = 0;
    for (i, h) in handles.into_iter().enumerate() {
        h.join()
            .map_err(|_| format!("node thread {i} panicked during the live run"))?;
        threads_joined += 1;
    }
    let elapsed_ms = shared.now_ns() / 1_000_000;

    let trace = LiveTrace::new(records);
    let violations = trace.check_safety(radio_range, &cfg.positions);
    let meals = trace.census(n);
    let latencies_ns = trace.hungry_to_eat_latencies_ns(n);
    Ok(LiveOutcome {
        trace,
        meals,
        latencies_ns,
        violations,
        messages_sent: shared.sent.load(Ordering::Relaxed),
        messages_delivered: shared.delivered.load(Ordering::Relaxed),
        decode_errors: shared.decode_errors.load(Ordering::Relaxed),
        send_failures: shared.send_failures.load(Ordering::Relaxed),
        retransmissions: shared.retransmissions.load(Ordering::Relaxed),
        acks_sent: shared.acks_sent.load(Ordering::Relaxed),
        recoveries,
        elapsed_ms,
        threads_joined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Vec<(f64, f64)> {
        vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = LiveConfig::new(LiveAlg::A2, TransportKind::Mpsc, vec![]);
        assert!(run_live(&cfg).is_err(), "empty topology");
        cfg.positions = line3();
        cfg.rate = 0.0;
        assert!(run_live(&cfg).is_err(), "zero rate");
        cfg.rate = 25.0;
        cfg.eat_ms = 10_000;
        assert!(run_live(&cfg).is_err(), "eating beyond tau");
        cfg.eat_ms = 2;
        cfg.crash = Some((9, 10));
        assert!(run_live(&cfg).is_err(), "crash target out of range");
    }

    #[test]
    fn short_mpsc_run_is_safe_and_joins_all_threads() {
        let mut cfg = LiveConfig::new(LiveAlg::A1Greedy, TransportKind::Mpsc, line3());
        cfg.duration_ms = 300;
        cfg.rate = 60.0;
        cfg.eat_ms = 1;
        let out = run_live(&cfg).expect("live run");
        assert_eq!(out.threads_joined, 3);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.total_meals() > 0, "nobody ate in 300 ms");
        assert_eq!(out.decode_errors, 0);
        assert!(out.messages_delivered > 0);
    }

    #[test]
    fn one_shot_run_feeds_every_node_exactly_once() {
        let mut cfg = LiveConfig::new(LiveAlg::ChandyMisra, TransportKind::Mpsc, line3());
        cfg.duration_ms = 2_000;
        cfg.one_shot = true;
        cfg.eat_ms = 1;
        let out = run_live(&cfg).expect("live run");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.meals, vec![1, 1, 1]);
        // Early stop: nowhere near the 2 s deadline.
        assert!(out.elapsed_ms < 1_500, "one-shot run did not stop early");
    }

    #[test]
    fn alg_names_round_trip() {
        for alg in LiveAlg::all() {
            assert_eq!(LiveAlg::parse(alg.name()).unwrap(), alg);
        }
        assert!(LiveAlg::parse("choy-singh").is_err());
    }
}
