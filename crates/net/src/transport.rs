//! Real transports: in-process channels and UDP on loopback.
//!
//! A [`Transport`] is a dumb pipe between the `n` node threads of one live
//! run: it moves opaque envelope bytes and nothing else. Link-level policy
//! — crashes, partitions, dead links — lives in the runtime's [`LinkGate`],
//! which the driver flips to *sever* traffic without the transport's
//! cooperation (exactly how the simulator's fault adversary sits outside
//! the protocol).
//!
//! The envelope wraps one codec frame with routing metadata:
//!
//! ```text
//! ┌──────────┬─────────┬────────────┬────────────┬───────────────┬─────────┐
//! │ from u32 │ kind u8 │ seq u64 LE │ ack u64 LE │ sent_ns u64 LE│ frame … │
//! └──────────┴─────────┴────────────┴────────────┴───────────────┴─────────┘
//! ```
//!
//! `kind` separates protocol data ([`ENV_DATA`]) from the reliable shim's
//! standalone acknowledgments ([`ENV_ACK`], empty frame). `seq` is the
//! per-directed-link sequence number (FIFO witness of the live trace),
//! `ack` the cumulative acknowledgment piggybacked by the reliable shim
//! (0 when the shim is off), and `sent_ns` the sender's monotonic send
//! instant relative to the run's shared origin (what the conformance
//! replay quantizes into simulator delivery delays).

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use manet_sim::NodeId;

use crate::codec::{CodecError, Reader};

/// Which transport a live run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process `std::sync::mpsc` channels.
    Mpsc,
    /// `std::net::UdpSocket` datagrams on 127.0.0.1.
    Udp,
}

impl TransportKind {
    /// Display name (also the `--transport` flag value).
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Mpsc => "mpsc",
            TransportKind::Udp => "udp",
        }
    }

    /// Parse a `--transport` flag value.
    pub fn parse(s: &str) -> Result<TransportKind, String> {
        match s {
            "mpsc" => Ok(TransportKind::Mpsc),
            "udp" => Ok(TransportKind::Udp),
            other => Err(format!("unknown transport '{other}'; try mpsc or udp")),
        }
    }
}

/// Envelope kind: a protocol data frame.
pub const ENV_DATA: u8 = 0;
/// Envelope kind: a standalone cumulative acknowledgment (empty frame).
pub const ENV_ACK: u8 = 1;

/// Encode one envelope around an already-encoded frame.
pub fn encode_envelope(
    from: NodeId,
    kind: u8,
    seq: u64,
    ack: u64,
    sent_ns: u64,
    frame: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 8 + 8 + 8 + frame.len());
    out.extend_from_slice(&from.0.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&ack.to_le_bytes());
    out.extend_from_slice(&sent_ns.to_le_bytes());
    out.extend_from_slice(frame);
    out
}

/// Split one envelope into `(from, kind, seq, ack, sent_ns, frame)`.
#[allow(clippy::type_complexity)]
pub fn decode_envelope(bytes: &[u8]) -> Result<(NodeId, u8, u64, u64, u64, &[u8]), CodecError> {
    let mut r = Reader::new(bytes);
    let from = NodeId(r.u32()?);
    let kind = r.u8()?;
    let seq = r.u64()?;
    let ack = r.u64()?;
    let sent_ns = r.u64()?;
    let frame = &bytes[bytes.len() - r.remaining()..];
    Ok((from, kind, seq, ack, sent_ns, frame))
}

/// A byte pipe between the nodes of one live run. Implementations must be
/// cheap to poll: `recv` blocks for at most `timeout`.
pub trait Transport: Send {
    /// Hand `envelope` to `to`'s inbox. Errors are transport failures
    /// (a peer that already shut down is *not* an error — the bytes are
    /// silently dropped, like a datagram after the receiver closed).
    fn send(&mut self, to: NodeId, envelope: &[u8]) -> Result<(), String>;

    /// Wait up to `timeout` for one envelope.
    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>>;
}

/// Directed-link kill switches, shared by the driver and every node
/// thread. The driver severs links to inject crashes and partitions; node
/// threads consult the gate before sending *and* after receiving, so a
/// partition drops in-flight traffic in both directions — mirroring the
/// simulator's `PartitionWindow`, which cuts links without notifying the
/// protocols.
#[derive(Debug)]
pub struct LinkGate {
    n: usize,
    severed: Vec<AtomicBool>,
}

impl LinkGate {
    /// A gate with every directed link open.
    pub fn new(n: usize) -> LinkGate {
        LinkGate {
            n,
            severed: (0..n * n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn idx(&self, from: NodeId, to: NodeId) -> usize {
        from.index() * self.n + to.index()
    }

    /// Whether `from → to` is currently severed.
    pub fn is_severed(&self, from: NodeId, to: NodeId) -> bool {
        self.severed[self.idx(from, to)].load(Ordering::Relaxed)
    }

    /// Open or sever the directed link `from → to`.
    pub fn set(&self, from: NodeId, to: NodeId, severed: bool) {
        self.severed[self.idx(from, to)].store(severed, Ordering::Relaxed);
    }

    /// Sever or heal both directions between `a` and `b`.
    pub fn set_pair(&self, a: NodeId, b: NodeId, severed: bool) {
        self.set(a, b, severed);
        self.set(b, a, severed);
    }

    /// Sever every link touching `node` (crash injection).
    pub fn sever_all(&self, node: NodeId) {
        for i in 0..self.n as u32 {
            let peer = NodeId(i);
            if peer != node {
                self.set_pair(node, peer, true);
            }
        }
    }
}

/// The mpsc transport: one channel per node, every peer holds a sender.
pub struct MpscTransport {
    txs: Vec<Option<Sender<Vec<u8>>>>,
    rx: Receiver<Vec<u8>>,
}

/// Build a fully-connected mpsc mesh for `n` nodes.
pub fn mpsc_mesh(n: usize) -> Vec<MpscTransport> {
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| channel::<Vec<u8>>()).unzip();
    rxs.into_iter()
        .enumerate()
        .map(|(me, rx)| MpscTransport {
            txs: txs
                .iter()
                .enumerate()
                .map(|(peer, tx)| (peer != me).then(|| tx.clone()))
                .collect(),
            rx,
        })
        .collect()
}

impl Transport for MpscTransport {
    fn send(&mut self, to: NodeId, envelope: &[u8]) -> Result<(), String> {
        match self.txs.get(to.index()) {
            Some(Some(tx)) => {
                // A disconnected peer (already shut down) swallows the
                // bytes, like a closed UDP port.
                let _ = tx.send(envelope.to_vec());
                Ok(())
            }
            Some(None) => Err(format!("node sent an envelope to itself ({to})")),
            None => Err(format!("destination {to} out of range")),
        }
    }

    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => Some(bytes),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

/// The UDP transport: one loopback socket per node, peers addressed by the
/// bound addresses collected at mesh construction.
pub struct UdpTransport {
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    timeout: Option<Duration>,
    buf: Box<[u8; 65_535]>,
}

/// Bind `n` loopback sockets and wire them into a mesh.
///
/// # Errors
///
/// Propagates socket creation/configuration failures.
pub fn udp_mesh(n: usize) -> Result<Vec<UdpTransport>, String> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("udp bind failed: {e}")))
        .collect::<Result<_, _>>()?;
    let peers: Vec<SocketAddr> = sockets
        .iter()
        .map(|s| s.local_addr().map_err(|e| format!("udp addr failed: {e}")))
        .collect::<Result<_, _>>()?;
    Ok(sockets
        .into_iter()
        .map(|socket| UdpTransport {
            socket,
            peers: peers.clone(),
            timeout: None,
            buf: Box::new([0u8; 65_535]),
        })
        .collect())
}

impl Transport for UdpTransport {
    fn send(&mut self, to: NodeId, envelope: &[u8]) -> Result<(), String> {
        let addr = self
            .peers
            .get(to.index())
            .ok_or_else(|| format!("destination {to} out of range"))?;
        // Loopback sends can still fail transiently (ENOBUFS under load);
        // a lost datagram is a legal transport outcome, not a run failure —
        // but the failure is reported so the runtime can *count* it instead
        // of losing it invisibly.
        self.socket
            .send_to(envelope, addr)
            .map_err(|e| format!("udp send to {to} failed: {e}"))?;
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> Option<Vec<u8>> {
        // Zero would mean "block forever" to the socket API.
        let timeout = timeout.max(Duration::from_micros(100));
        if self.timeout != Some(timeout) {
            if self.socket.set_read_timeout(Some(timeout)).is_err() {
                return None;
            }
            self.timeout = Some(timeout);
        }
        match self.socket.recv_from(&mut self.buf[..]) {
            Ok((len, _)) => Some(self.buf[..len].to_vec()),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let env = encode_envelope(NodeId(3), ENV_DATA, 42, 7, 1_000_000, b"frame");
        let (from, kind, seq, ack, sent, frame) = decode_envelope(&env).unwrap();
        assert_eq!(from, NodeId(3));
        assert_eq!(kind, ENV_DATA);
        assert_eq!(seq, 42);
        assert_eq!(ack, 7);
        assert_eq!(sent, 1_000_000);
        assert_eq!(frame, b"frame");
        assert!(decode_envelope(&env[..10]).is_err());
        let ack_env = encode_envelope(NodeId(1), ENV_ACK, 0, 9, 5, b"");
        let (_, kind, _, ack, _, frame) = decode_envelope(&ack_env).unwrap();
        assert_eq!(kind, ENV_ACK);
        assert_eq!(ack, 9);
        assert!(frame.is_empty());
    }

    #[test]
    fn mpsc_mesh_delivers_between_peers() {
        let mut mesh = mpsc_mesh(3);
        let mut t2 = mesh.pop().unwrap();
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        t0.send(NodeId(2), b"hello").unwrap();
        t1.send(NodeId(2), b"world").unwrap();
        let a = t2.recv(Duration::from_millis(100)).unwrap();
        let b = t2.recv(Duration::from_millis(100)).unwrap();
        assert_eq!([a.as_slice(), b.as_slice()], [&b"hello"[..], &b"world"[..]]);
        assert!(t0.recv(Duration::from_millis(1)).is_none());
        assert!(t0.send(NodeId(0), b"self").is_err());
    }

    #[test]
    fn udp_mesh_delivers_on_loopback() {
        let mut mesh = udp_mesh(2).unwrap();
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        t0.send(NodeId(1), b"datagram").unwrap();
        let got = t1.recv(Duration::from_millis(500)).unwrap();
        assert_eq!(got, b"datagram");
        assert!(t1.recv(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn link_gate_severs_directionally() {
        let gate = LinkGate::new(3);
        assert!(!gate.is_severed(NodeId(0), NodeId(1)));
        gate.set(NodeId(0), NodeId(1), true);
        assert!(gate.is_severed(NodeId(0), NodeId(1)));
        assert!(!gate.is_severed(NodeId(1), NodeId(0)));
        gate.sever_all(NodeId(2));
        assert!(gate.is_severed(NodeId(2), NodeId(0)));
        assert!(gate.is_severed(NodeId(1), NodeId(2)));
        gate.set_pair(NodeId(0), NodeId(1), false);
        assert!(!gate.is_severed(NodeId(0), NodeId(1)));
    }
}
