//! # `lme-net` — the live runtime
//!
//! Everything else in this workspace runs the paper's algorithms inside a
//! deterministic discrete-event simulator, where "time" is a counter and
//! "the network" is a priority queue. This crate runs the *same*
//! [`manet_sim::Protocol`] automata as real concurrent programs: one OS
//! thread per node, real message passing, wall-clock time.
//!
//! The layering:
//!
//! * [`codec`] — hand-rolled length-prefixed wire format (version byte,
//!   algorithm tag, payload, FNV-1a checksum) for every protocol message;
//!   strict decoding, no panics on hostile bytes;
//! * [`transport`] — the [`transport::Transport`] trait and its two
//!   implementations: in-process `std::sync::mpsc` channels and
//!   `std::net::UdpSocket` datagrams on loopback, plus the
//!   [`transport::LinkGate`] the driver flips to sever links;
//! * [`runtime`] — node threads, the self-driven workload, and the driver
//!   that injects mobility, crashes, and partitions under the simulator's
//!   rules ([`runtime::run_live`]);
//! * [`shard`] — the M:N sharded runtime: a fixed worker pool owning
//!   contiguous node shards, per-shard timing wheels, batched
//!   cross-shard frames over bounded SPSC rings, and per-shard ticket
//!   ranges merged into one total order at export; selected via
//!   [`runtime::LiveRuntime::Sharded`] and scaling the same automata to
//!   tens of thousands of nodes;
//! * [`trace`] — totally-ordered capture of everything observable, safety
//!   validation through the harness [`harness::SafetyMonitor`], and export
//!   of delivery timings as a simulator schedule;
//! * [`replay`] — the conformance bridge: re-run a live execution's
//!   timing shape inside the deterministic engine and check that safety
//!   and the eating census survive the crossing.
//!
//! What is *lost* relative to the simulator — and deliberately so — is
//! virtual-time determinism: a live run's interleaving comes from the OS
//! scheduler and real queues. What is *kept* is the model: the automata,
//! the ν-bounded-delay assumption (ticks map to wall time via
//! `tick_ns`), the crash and partition semantics, and the safety
//! invariant, checked by the very same monitor that audits simulated
//! runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod replay;
pub mod runtime;
pub mod shard;
pub mod trace;
pub mod transport;

pub use codec::{decode_frame, encode_frame, CodecError, WireMsg, WIRE_VERSION};
pub use replay::{conformance_replay, ConformanceReport};
pub use runtime::{run_live, LiveAlg, LiveConfig, LiveOutcome, LiveRuntime};
pub use shard::{merge_stamped, HybridClock, ShardAbort, ShardTuning, StampedRecord};
pub use trace::{LiveEventKind, LiveRecord, LiveTrace, NodeNetStats};
pub use transport::{
    decode_envelope, encode_envelope, mpsc_mesh, udp_mesh, LinkGate, MpscTransport, Transport,
    TransportKind, UdpTransport, ENV_ACK, ENV_DATA,
};
