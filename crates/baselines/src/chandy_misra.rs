//! The Chandy–Misra "hygienic" dining-philosophers algorithm, adapted to
//! link churn.
//!
//! Forks are *clean* or *dirty*; a hungry node requests a missing fork by
//! sending the shared *request token*. A holder yields a **dirty** fork
//! (cleaning it in transit) unless it is eating; it keeps a **clean** fork
//! while hungry. Forks get dirty when their holder eats. The dirty/clean
//! precedence graph starts acyclic (fork at the smaller ID, dirty) and
//! stays acyclic, which yields freedom from deadlock — but a crashed node
//! can block a chain of hungry nodes of any length, so the failure locality
//! is `n` (this is the property Table 1 contrasts with the paper's
//! algorithms).
//!
//! MANET adaptation (same link-level contract as the paper's algorithms):
//! a new link's fork is born dirty at the designated-static side, the
//! request token at the moving side, and a mover that was eating is demoted
//! to hungry.

use std::collections::BTreeMap;

use manet_sim::{Context, DiningState, Event, LinkUpKind, NodeId, NodeSeed, Protocol};

/// Messages of the Chandy–Misra protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmMsg {
    /// The request token for the shared fork.
    ReqToken,
    /// The shared fork (always sent clean).
    Fork,
}

impl CmMsg {
    /// Coarse label for traces and message-complexity accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            CmMsg::ReqToken => "req-token",
            CmMsg::Fork => "fork",
        }
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Edge {
    holds_fork: bool,
    dirty: bool,
    has_token: bool,
}

/// Per-node counters exposed for experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CmStats {
    /// Completed critical sections.
    pub meals: u64,
    /// Eating→hungry demotions caused by arriving in a new neighborhood.
    pub demotions: u64,
}

/// One Chandy–Misra node. Implements [`Protocol`] for the simulator.
#[derive(Debug)]
pub struct ChandyMisra {
    me: NodeId,
    state: DiningState,
    edges: BTreeMap<NodeId, Edge>,
    /// Experiment counters.
    pub stats: CmStats,
}

impl ChandyMisra {
    /// Build a node: the fork of link `{i, j}` starts **dirty** at the
    /// smaller ID; the request token starts at the larger ID.
    pub fn new(seed: &NodeSeed) -> ChandyMisra {
        ChandyMisra {
            me: seed.id,
            state: DiningState::Thinking,
            edges: seed
                .neighbors
                .iter()
                .map(|&j| {
                    let i_hold = seed.id < j;
                    (
                        j,
                        Edge {
                            holds_fork: i_hold,
                            dirty: i_hold,
                            has_token: !i_hold,
                        },
                    )
                })
                .collect(),
            stats: CmStats::default(),
        }
    }

    /// Whether this node currently holds the fork shared with `j`.
    pub fn holds_fork(&self, j: NodeId) -> bool {
        self.edges.get(&j).is_some_and(|e| e.holds_fork)
    }

    fn all_forks(&self) -> bool {
        self.edges.values().all(|e| e.holds_fork)
    }

    /// Request missing forks (token in hand), and eat when complete.
    fn kick(&mut self, ctx: &mut Context<'_, CmMsg>) {
        if self.state != DiningState::Hungry {
            return;
        }
        if self.all_forks() {
            self.state = DiningState::Eating;
            for e in self.edges.values_mut() {
                e.dirty = true; // forks get dirty by eating
            }
            return;
        }
        let to_request: Vec<NodeId> = self
            .edges
            .iter()
            .filter(|(_, e)| !e.holds_fork && e.has_token)
            .map(|(&j, _)| j)
            .collect();
        for j in to_request {
            self.edges.get_mut(&j).expect("known neighbor").has_token = false;
            ctx.send(j, CmMsg::ReqToken);
        }
    }

    /// Yield the (dirty) fork shared with `j`, cleaning it in transit.
    fn yield_fork(&mut self, j: NodeId, ctx: &mut Context<'_, CmMsg>) {
        let e = self.edges.get_mut(&j).expect("known neighbor");
        debug_assert!(e.holds_fork);
        e.holds_fork = false;
        e.dirty = false;
        ctx.send(j, CmMsg::Fork);
    }
}

impl Protocol for ChandyMisra {
    type Msg = CmMsg;

    fn on_event(&mut self, ev: Event<CmMsg>, ctx: &mut Context<'_, CmMsg>) {
        match ev {
            Event::Hungry => {
                if self.state == DiningState::Thinking {
                    self.state = DiningState::Hungry;
                    self.kick(ctx);
                }
            }
            Event::ExitCs => {
                if self.state == DiningState::Eating {
                    self.state = DiningState::Thinking;
                    self.stats.meals += 1;
                    // Grant all deferred requests (token + fork both here).
                    let deferred: Vec<NodeId> = self
                        .edges
                        .iter()
                        .filter(|(_, e)| e.holds_fork && e.has_token)
                        .map(|(&j, _)| j)
                        .collect();
                    for j in deferred {
                        self.yield_fork(j, ctx);
                    }
                }
            }
            Event::Message { from, msg } => {
                let Some(&edge) = self.edges.get(&from) else {
                    return; // link died while the message was in flight
                };
                match msg {
                    CmMsg::ReqToken => {
                        if !edge.holds_fork {
                            // In a fault-free run the token implies the fork
                            // is here; under duplication faults a replayed
                            // request can trail the fork it already won.
                            // Stale — ignore.
                            return;
                        }
                        self.edges.get_mut(&from).expect("known").has_token = true;
                        let withhold = self.state == DiningState::Eating
                            || (self.state == DiningState::Hungry && !edge.dirty);
                        if !withhold {
                            self.yield_fork(from, ctx);
                            // A hungry node that yields immediately re-requests.
                            self.kick(ctx);
                        }
                    }
                    CmMsg::Fork => {
                        let e = self.edges.get_mut(&from).expect("known");
                        if e.holds_fork {
                            // Duplicated delivery of a fork already held
                            // (or already passed on): accepting it twice
                            // would double the fork. Stale — ignore.
                            return;
                        }
                        e.holds_fork = true;
                        e.dirty = false;
                        self.kick(ctx);
                    }
                }
            }
            Event::LinkUp { peer, kind } => {
                match kind {
                    LinkUpKind::AsStatic => {
                        self.edges.insert(
                            peer,
                            Edge {
                                holds_fork: true,
                                dirty: true,
                                has_token: false,
                            },
                        );
                    }
                    LinkUpKind::AsMoving => {
                        self.edges.insert(
                            peer,
                            Edge {
                                holds_fork: false,
                                dirty: false,
                                has_token: true,
                            },
                        );
                        if self.state == DiningState::Eating {
                            self.state = DiningState::Hungry;
                            self.stats.demotions += 1;
                        }
                        self.kick(ctx);
                    }
                }
                let _ = self.me; // id kept for debugging / symmetry with other protocols
            }
            Event::LinkDown { peer } => {
                self.edges.remove(&peer);
                self.kick(ctx);
            }
            Event::MovementStarted | Event::MovementEnded | Event::Timer { .. } => {}
        }
    }

    fn dining_state(&self) -> DiningState {
        self.state
    }

    fn msg_kind(msg: &CmMsg) -> &'static str {
        msg.kind()
    }

    fn state_digest(&self) -> Option<u64> {
        Some(manet_sim::digest_of_debug(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_mutex::testutil::{AutoExit, SafetyCheck};
    use manet_sim::{Engine, SimConfig, SimTime};

    fn line_engine(n: usize) -> Engine<ChandyMisra> {
        Engine::new(
            SimConfig::default(),
            (0..n).map(|i| (i as f64, 0.0)).collect::<Vec<_>>(),
            |seed| ChandyMisra::new(&seed),
        )
    }

    #[test]
    fn lone_node_eats() {
        let mut e = line_engine(1);
        e.add_hook(Box::new(AutoExit::new(20)));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.run_until(SimTime(200));
        assert!(e.protocol(NodeId(0)).stats.meals >= 1);
    }

    #[test]
    fn contention_line_all_eat_safely() {
        let mut e = line_engine(6);
        e.add_hook(Box::new(AutoExit::new(20)));
        e.add_hook(Box::new(SafetyCheck::default()));
        for i in 0..6 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        e.run_until(SimTime(50_000));
        for i in 0..6 {
            assert!(e.protocol(NodeId(i)).stats.meals >= 1, "p{i} starved");
        }
    }

    #[test]
    fn dirty_fork_is_yielded_clean_fork_is_kept() {
        let mut e = line_engine(2);
        e.add_hook(Box::new(AutoExit::new(5_000))); // p1 eats for a long time
                                                    // p0 holds the dirty fork initially; p1 requests and gets it.
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.run_until(SimTime(100));
        assert_eq!(e.dining_state(NodeId(1)), DiningState::Eating);
        assert!(!e.protocol(NodeId(0)).holds_fork(NodeId(1)));
        // p0 requests while p1 eats: deferred until p1 exits.
        e.set_hungry_at(SimTime(101), NodeId(0));
        e.run_until(SimTime(500));
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Hungry);
    }

    #[test]
    fn mobility_demotes_eating_mover() {
        let mut e: Engine<ChandyMisra> = Engine::new(
            SimConfig::default(),
            vec![(0.0, 0.0), (10.0, 0.0)],
            |seed| ChandyMisra::new(&seed),
        );
        e.add_hook(Box::new(AutoExit::new(10_000)));
        e.add_hook(Box::new(SafetyCheck::default()));
        e.set_hungry_at(SimTime(1), NodeId(0));
        e.set_hungry_at(SimTime(1), NodeId(1));
        e.run_until(SimTime(100));
        // Both eat (no link). Now p1 jumps next to p0.
        assert_eq!(e.dining_state(NodeId(0)), DiningState::Eating);
        assert_eq!(e.dining_state(NodeId(1)), DiningState::Eating);
        e.teleport_at(SimTime(150), NodeId(1), (1.0, 0.0));
        e.run_until(SimTime(200));
        assert_eq!(e.dining_state(NodeId(1)), DiningState::Hungry);
        assert_eq!(e.protocol(NodeId(1)).stats.demotions, 1);
    }
}
