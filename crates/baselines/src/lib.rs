//! # `baselines` — comparator algorithms for the Table 1 experiments
//!
//! Executable implementations of the two baselines the paper builds on
//! directly:
//!
//! * [`ChandyMisra`] — the classic hygienic dining-philosophers algorithm
//!   (failure locality `n`), adapted to link churn with the same link-level
//!   contract as the paper's algorithms;
//! * [`choy_singh()`] — Choy–Singh-style doorway algorithm with a fixed
//!   precomputed coloring (failure locality 4, response time `O(δ²)` in
//!   static networks); equivalently, Algorithm 1 with its recoloring module
//!   disabled, which makes the value of recoloring directly measurable.
//!
//! The remaining Table 1 rows (Tsay–Bagrodia / Sivilotti) are carried as
//! literature values by the table generator; see DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chandy_misra;
pub mod choy_singh;

pub use chandy_misra::{ChandyMisra, CmMsg, CmStats};
pub use choy_singh::{choy_singh, StaticColoring};
