//! A Choy–Singh-style static-color baseline.
//!
//! Choy and Singh's doorway algorithm (the paper's main static comparator:
//! failure locality 4, response time `O(δ²)`) is exactly the fork-collection
//! module of Algorithm 1 run with a *fixed*, precomputed legal coloring and
//! no recoloring. We therefore instantiate [`Algorithm1`] with
//! `recolor_on_move = false` and install a greedy coloring of the initial
//! topology.
//!
//! In a static network this matches CS92's structure and bounds. Under
//! mobility the missing recoloring is precisely what the paper's Algorithm 1
//! fixes: colors can become illegal when same-colored nodes become
//! neighbors, which can starve nodes (never violating safety — safety rests
//! on the forks alone). The Table 1 experiment exercises both regimes.

use coloring::{greedy_color_graph, AdjGraph};
use local_mutex::Algorithm1;
use manet_sim::NodeSeed;

/// A precomputed legal coloring for the initial topology, shared by every
/// node's constructor.
#[derive(Clone, Debug)]
pub struct StaticColoring {
    colors: Vec<i64>,
}

impl StaticColoring {
    /// Greedily color the initial topology given every node's neighbor
    /// list (e.g. collected from [`NodeSeed`]s or the world's adjacency).
    pub fn compute(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> StaticColoring {
        let mut g = AdjGraph::from_edges(edges);
        for v in 0..n as u32 {
            g.add_vertex(v);
        }
        let map = greedy_color_graph(&g);
        StaticColoring {
            colors: (0..n as u32).map(|v| map[&v]).collect(),
        }
    }

    /// The color assigned to node `v`.
    pub fn color(&self, v: u32) -> i64 {
        self.colors[v as usize]
    }

    /// All colors, indexed by node ID.
    pub fn as_slice(&self) -> &[i64] {
        &self.colors
    }
}

/// Construct one Choy–Singh baseline node: Algorithm 1's fork collection
/// with the fixed `coloring` and the recoloring module disabled.
pub fn choy_singh(seed: &NodeSeed, coloring: &StaticColoring) -> Algorithm1 {
    let mut node = Algorithm1::greedy(seed);
    node.recolor_on_move = false;
    node.set_initial_coloring(coloring.as_slice());
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_mutex::testutil::{AutoExit, SafetyCheck};
    use manet_sim::{Engine, NodeId, SimConfig, SimTime};

    fn ring_positions(n: usize) -> Vec<(f64, f64)> {
        let r = n as f64 / std::f64::consts::TAU * 1.0 / 1.0;
        // Place nodes so that only adjacent ring members are in range 1.5.
        let radius = 1.0 / (2.0 * (std::f64::consts::PI / n as f64).sin());
        let _ = r;
        (0..n)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / n as f64;
                (radius * a.cos(), radius * a.sin())
            })
            .collect()
    }

    fn engine(n: usize) -> Engine<Algorithm1> {
        let pos = ring_positions(n);
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32));
        }
        let coloring = StaticColoring::compute(n, edges);
        Engine::new(SimConfig::default(), pos, move |seed| {
            choy_singh(&seed, &coloring)
        })
    }

    #[test]
    fn coloring_is_legal_on_ring() {
        let coloring = StaticColoring::compute(5, (0..5u32).map(|i| (i, (i + 1) % 5)));
        for i in 0..5u32 {
            assert_ne!(coloring.color(i), coloring.color((i + 1) % 5));
        }
        assert!(coloring.as_slice().iter().all(|&c| (0..=2).contains(&c)));
    }

    #[test]
    fn ring_contention_all_eat() {
        let n = 8;
        let mut e = engine(n);
        e.add_hook(Box::new(AutoExit::new(20)));
        e.add_hook(Box::new(SafetyCheck::default()));
        for i in 0..n as u32 {
            e.set_hungry_at(SimTime(1), NodeId(i));
        }
        e.run_until(SimTime(50_000));
        for i in 0..n as u32 {
            assert!(e.protocol(NodeId(i)).stats.meals >= 1, "p{i} starved");
        }
    }

    #[test]
    fn never_recolors_even_after_moving() {
        let mut e: Engine<Algorithm1> = {
            let coloring = StaticColoring::compute(3, [(0u32, 1u32)]);
            Engine::new(
                SimConfig::default(),
                vec![(0.0, 0.0), (1.0, 0.0), (50.0, 0.0)],
                move |seed| choy_singh(&seed, &coloring),
            )
        };
        e.add_hook(Box::new(AutoExit::new(10)));
        e.add_hook(Box::new(SafetyCheck::default()));
        e.teleport_at(SimTime(5), NodeId(2), (2.0, 0.0));
        e.set_hungry_at(SimTime(50), NodeId(2));
        e.run_until(SimTime(5_000));
        assert_eq!(e.protocol(NodeId(2)).stats.recolorings, 0);
        // It still makes progress here because greedy colors happen to stay
        // legal in this layout.
        assert!(e.protocol(NodeId(2)).stats.meals >= 1);
    }
}
